//! Per-spec online run-time prediction for SLO-aware scheduling.
//!
//! Policies that pack to deadlines need to know, *before* launching,
//! how long a batch will occupy an instance. The [`Predictor`] keeps
//! one tiny model per spec key — microseconds per input byte plus an
//! output-expansion ratio — learned from completed runs' simulated
//! timing (the same counters `fleet-trace` attributes). Before the
//! first completion of a spec, predictions come from a static
//! DSL-derived seed: one input token per cycle at the platform clock,
//! the structural best case, so an unlearned model *underestimates*
//! and proactive shedding stays safe (it only rejects jobs that are
//! hopeless even under optimistic timing).
//!
//! Determinism: the model mutates only through
//! [`Predictor::apply_due`], which absorbs buffered observations in
//! `(completed_at_us, instance)` order — a pure function of the
//! virtual timeline — so predictions (and every scheduling decision
//! derived from them) are bit-identical at any sim-thread count. A
//! batch that completes at virtual time `t` can influence decisions
//! only at virtual times `>= t`, exactly as on real hardware.

use std::collections::BTreeMap;
use std::sync::Arc;

use fleet_lang::UnitSpec;

/// Fixed-point scale for nanoseconds-per-byte and the output ratio.
const FP: u64 = 1024;

/// One spec's learned cost model (fixed-point, copyable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecModel {
    /// Run nanoseconds per input byte of the *longest* stream, ×1024.
    /// Streams of a batch run on parallel PUs, so batch run time
    /// follows the maximum member, not the sum.
    pub npb_x1024: u64,
    /// Output bytes per input byte, ×1024 (drain-cost estimation).
    pub out_ratio_x1024: u64,
    /// Completed-run observations absorbed into the model.
    pub observations: u64,
}

impl SpecModel {
    /// Predicted run time for a longest-stream length of `max_bytes`,
    /// in virtual µs (at least 1).
    pub fn run_us(&self, max_bytes: u64) -> u64 {
        (max_bytes * self.npb_x1024).div_ceil(FP * 1000).max(1)
    }

    /// Predicted output bytes for `in_bytes` of input.
    pub fn out_bytes(&self, in_bytes: u64) -> u64 {
        in_bytes * self.out_ratio_x1024 / FP
    }
}

/// A buffered completed-run observation, applied in virtual-clock
/// order by [`Predictor::apply_due`].
#[derive(Debug, Clone)]
struct Observation {
    /// Virtual completion time of the run.
    at_us: u64,
    /// Instance that ran it (deterministic tie-break for equal times).
    instance: usize,
    spec_key: Arc<str>,
    /// The spec, for seeding a first-observation model.
    spec: Arc<UnitSpec>,
    /// Longest member stream of the batch, in bytes.
    max_bytes: u64,
    /// Simulated run time, in virtual µs.
    run_us: u64,
    /// Total input bytes of the batch.
    in_bytes: u64,
    /// Total output bytes of the batch.
    out_bytes: u64,
}

/// The per-spec-key online run-time model.
///
/// See the module docs for the learning/determinism contract. Owned by
/// the [`crate::Host`] and consulted by every predictive
/// [`crate::policy::PackPolicy`] through [`Predictor::predict_run_us`]
/// and friends.
#[derive(Debug)]
pub struct Predictor {
    /// Platform logic clock in integer Hz — the static seed's
    /// cycle→time conversion. Integer on purpose: every quantity the
    /// predictor stores or derives is fixed-point, so no float ever
    /// touches model state and seeds are bit-identical everywhere.
    clock_hz: u64,
    models: BTreeMap<Arc<str>, SpecModel>,
    /// Observations not yet virtual-clock-due, unsorted; `apply_due`
    /// orders them.
    pending: Vec<Observation>,
}

impl Predictor {
    /// A predictor seeding unlearned specs against `clock_hz` (integer
    /// hertz; fractional platform clocks round toward zero).
    pub fn new(clock_hz: u64) -> Predictor {
        Predictor { clock_hz: clock_hz.max(1), models: BTreeMap::new(), pending: Vec::new() }
    }

    /// The static DSL-derived seed for `spec`: one input token per
    /// cycle at the platform clock (the structural best case — a PU
    /// that consumes a token every cycle and emits byte-for-byte).
    ///
    /// Computed in *bits*: a token is `input_token_bits / 8` bytes,
    /// which need not be whole (a 12-bit token is 1.5 bytes/cycle), so
    /// ns/byte = 8e9 / (clock_hz × token_bits). Rounding the token to
    /// whole bytes first — the historical defect — inflated the seed by
    /// up to 1.5× for non-byte-aligned widths. For byte-aligned tokens
    /// this integer form reproduces the old seeds exactly.
    pub fn seed(&self, spec: &UnitSpec) -> SpecModel {
        let token_bits = (spec.input_token_bits as u128).max(1);
        let npb_x1024 =
            (8_000_000_000u128 * FP as u128 / (self.clock_hz as u128 * token_bits)) as u64;
        SpecModel { npb_x1024: npb_x1024.max(1), out_ratio_x1024: FP, observations: 0 }
    }

    /// Immutable snapshot of every learned model, in key order — the
    /// predictor-state export cluster routers feed their placement and
    /// pressure decisions from.
    pub fn snapshot(&self) -> Vec<(Arc<str>, SpecModel)> {
        self.models.iter().map(|(k, m)| (k.clone(), *m)).collect()
    }

    /// The model for `key`, or the static seed when unlearned.
    pub fn model(&self, key: &str, spec: &UnitSpec) -> SpecModel {
        self.models.get(key).copied().unwrap_or_else(|| self.seed(spec))
    }

    /// Completed-run observations absorbed for `key` so far.
    pub fn observations(&self, key: &str) -> u64 {
        self.models.get(key).map_or(0, |m| m.observations)
    }

    /// Predicted run time of a batch of `spec` whose longest stream is
    /// `max_bytes`, in virtual µs.
    pub fn predict_run_us(&self, key: &str, spec: &UnitSpec, max_bytes: u64) -> u64 {
        self.model(key, spec).run_us(max_bytes)
    }

    /// Predicted output bytes for `in_bytes` through `spec`.
    pub fn predict_out_bytes(&self, key: &str, spec: &UnitSpec, in_bytes: u64) -> u64 {
        self.model(key, spec).out_bytes(in_bytes)
    }

    /// Buffers a completed run for learning. The update becomes
    /// visible only once the virtual clock passes `at_us` (see
    /// [`Predictor::apply_due`]).
    #[allow(clippy::too_many_arguments)]
    pub fn observe(
        &mut self,
        at_us: u64,
        instance: usize,
        spec_key: &Arc<str>,
        spec: &Arc<UnitSpec>,
        max_bytes: u64,
        run_us: u64,
        in_bytes: u64,
        out_bytes: u64,
    ) {
        if max_bytes == 0 {
            return;
        }
        self.pending.push(Observation {
            at_us,
            instance,
            spec_key: spec_key.clone(),
            spec: spec.clone(),
            max_bytes,
            run_us,
            in_bytes,
            out_bytes,
        });
    }

    /// Absorbs every buffered observation with `at_us <= now_us`, in
    /// `(at_us, instance)` order — the only place model state mutates,
    /// so the learning trajectory is a pure function of the virtual
    /// timeline.
    pub fn apply_due(&mut self, now_us: u64) {
        if self.pending.iter().all(|o| o.at_us > now_us) {
            return;
        }
        let mut due: Vec<Observation> = Vec::new();
        let mut rest: Vec<Observation> = Vec::new();
        for o in self.pending.drain(..) {
            if o.at_us <= now_us {
                due.push(o);
            } else {
                rest.push(o);
            }
        }
        self.pending = rest;
        due.sort_by(|a, b| {
            (a.at_us, a.instance, &a.spec_key).cmp(&(b.at_us, b.instance, &b.spec_key))
        });
        for o in due {
            let mut m = self.models.get(&o.spec_key).copied().unwrap_or_else(|| self.seed(&o.spec));
            let obs_npb = (o.run_us * 1000 * FP / o.max_bytes).max(1);
            let obs_ratio = (o.out_bytes * FP).checked_div(o.in_bytes).unwrap_or(FP);
            if m.observations == 0 {
                // First real sample replaces the structural seed.
                m.npb_x1024 = obs_npb;
                m.out_ratio_x1024 = obs_ratio;
            } else {
                // EMA with α = 1/4: stable against one odd batch,
                // adapts within a handful of completions.
                m.npb_x1024 = (3 * m.npb_x1024 + obs_npb) / 4;
                m.out_ratio_x1024 = (3 * m.out_ratio_x1024 + obs_ratio) / 4;
            }
            m.observations += 1;
            self.models.insert(o.spec_key.clone(), m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleet_lang::UnitBuilder;

    fn spec8() -> Arc<UnitSpec> {
        let mut u = UnitBuilder::new("Byte", 8, 8);
        let acc = u.reg("acc", 8, 0);
        let inp = u.input();
        u.set(acc, acc ^ inp);
        Arc::new(u.build().unwrap())
    }

    fn spec12() -> Arc<UnitSpec> {
        // A 12-bit input token: 1.5 bytes per cycle, the non-byte-
        // aligned case the truncating seed got wrong.
        let mut u = UnitBuilder::new("Odd", 12, 8);
        let acc = u.reg("acc", 12, 0);
        let inp = u.input();
        u.set(acc, acc ^ inp);
        Arc::new(u.build().unwrap())
    }

    #[test]
    fn seed_is_one_token_per_cycle() {
        let p = Predictor::new(125_000_000);
        let spec = spec8();
        // 1-byte tokens at 125 MHz: 8 ns/byte → 4096 bytes ≈ 33 µs.
        let us = p.predict_run_us("Byte:8x8", &spec, 4096);
        assert!((30..=40).contains(&us), "seed predicted {us} µs");
        assert_eq!(p.predict_out_bytes("Byte:8x8", &spec, 1000), 1000);
        assert_eq!(p.observations("Byte:8x8"), 0);
    }

    #[test]
    fn seed_counts_bits_not_truncated_bytes() {
        // 12-bit tokens move 1.5 bytes per cycle. The truncating seed
        // treated them as 1 byte/cycle and predicted 1.5× too slow.
        let p = Predictor::new(125_000_000);
        let spec = spec12();
        let seed = p.seed(&spec);
        assert_eq!(
            seed.npb_x1024,
            8_000_000_000 * 1024 / (125_000_000 * 12),
            "seed must divide by token bits, not whole bytes"
        );
        // 1.5× faster than the byte-truncated model (8192 ×1024).
        assert_eq!(seed.npb_x1024, 5461);
        // Byte-aligned widths are unchanged by the fix: 8-bit tokens at
        // 125 MHz still seed at exactly 8 ns/byte.
        assert_eq!(p.seed(&spec8()).npb_x1024, 8 * 1024);
    }

    #[test]
    fn seeds_are_bit_identical_and_float_free() {
        // Integer-Hz seeding: any two predictors over the same clock
        // produce byte-for-byte equal models for every width, including
        // clocks that are not exactly representable as small floats.
        for hz in [125_000_000u64, 250_000_000, 333_333_333, 1] {
            let a = Predictor::new(hz);
            let b = Predictor::new(hz);
            for spec in [spec8(), spec12()] {
                assert_eq!(a.seed(&spec), b.seed(&spec), "clock {hz} Hz");
                // The exact integer the seed must land on.
                let bits = spec.input_token_bits as u128;
                let want = (8_000_000_000u128 * 1024 / (hz as u128 * bits)).max(1) as u64;
                assert_eq!(a.seed(&spec).npb_x1024, want);
            }
        }
    }

    #[test]
    fn observations_move_the_model_and_respect_the_clock() {
        let mut p = Predictor::new(125_000_000);
        let spec = spec8();
        let key: Arc<str> = "Byte:8x8".into();
        // A run 4× slower than the seed, completing at t=100.
        p.observe(100, 0, &key, &spec, 4096, 132, 4096, 8192);
        // Not due yet: prediction still the seed.
        p.apply_due(50);
        let before = p.predict_run_us(&key, &spec, 4096);
        assert!(before < 60, "model moved before its observation was due");
        // Due: first sample replaces the seed.
        p.apply_due(100);
        let after = p.predict_run_us(&key, &spec, 4096);
        assert!((120..=145).contains(&after), "learned prediction {after} µs");
        assert_eq!(p.observations(&key), 1);
        // Output ratio learned as 2×.
        assert_eq!(p.predict_out_bytes(&key, &spec, 1000), 2000);
    }

    #[test]
    fn updates_apply_in_virtual_clock_order() {
        // Two predictors fed the same observations in different call
        // order converge to the same model once both are due — the
        // sort by (at_us, instance) is the canonical order.
        let spec = spec8();
        let key: Arc<str> = "Byte:8x8".into();
        let mut a = Predictor::new(125_000_000);
        a.observe(10, 0, &key, &spec, 1000, 50, 1000, 1000);
        a.observe(20, 1, &key, &spec, 1000, 90, 1000, 1000);
        a.apply_due(100);
        let mut b = Predictor::new(125_000_000);
        b.observe(20, 1, &key, &spec, 1000, 90, 1000, 1000);
        b.observe(10, 0, &key, &spec, 1000, 50, 1000, 1000);
        b.apply_due(100);
        assert_eq!(a.model(&key, &spec), b.model(&key, &spec));
    }
}
