//! The bounded submission queue: admission control plus per-tenant
//! weighted fair queuing.
//!
//! Classic virtual-time WFQ: each tenant keeps a FIFO of its jobs; a
//! job entering the queue is stamped with a virtual finish time
//! `vft = max(vnow, tenant's last vft) + cost / weight` where cost is
//! the job's input bytes, and the queue always releases the pending
//! head job with the smallest stamp. A tenant with weight 2 therefore
//! drains twice the bytes per unit of virtual time as a tenant with
//! weight 1, and an idle tenant re-enters at the current virtual time
//! instead of banking credit.

use std::collections::{BTreeMap, VecDeque};

use crate::job::{Job, RejectReason, RejectedJob, TenantId};

/// Fixed-point scale for the virtual clock, so integer division by the
/// weight keeps precision on small jobs.
const VT_SCALE: u64 = 1024;

#[derive(Debug, Default)]
struct TenantQueue {
    weight: u32,
    last_vft: u64,
    jobs: VecDeque<(u64, Job)>,
}

/// Bounded multi-tenant queue with WFQ release order.
#[derive(Debug)]
pub struct SubmitQueue {
    capacity: usize,
    default_weight: u32,
    len: usize,
    bytes: u64,
    vnow: u64,
    tenants: BTreeMap<TenantId, TenantQueue>,
}

impl SubmitQueue {
    /// Creates a queue holding at most `capacity` jobs, all tenants at
    /// weight 1 until [`SubmitQueue::set_weight`] says otherwise.
    pub fn new(capacity: usize) -> SubmitQueue {
        SubmitQueue {
            capacity,
            default_weight: 1,
            len: 0,
            bytes: 0,
            vnow: 0,
            tenants: BTreeMap::new(),
        }
    }

    /// Sets a tenant's WFQ weight (`>= 1`; higher drains faster).
    pub fn set_weight(&mut self, tenant: TenantId, weight: u32) {
        let w = weight.max(1);
        self.tenants.entry(tenant).or_default().weight = w;
    }

    /// Queued jobs across all tenants.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total input bytes across all queued jobs, tracked incrementally
    /// so cluster routers can read queue pressure in O(1) per probe.
    pub fn queued_bytes(&self) -> u64 {
        self.bytes
    }

    /// Visits every queued job in deterministic `(tenant id, FIFO)`
    /// order — the hook a router uses to compute predicted backlog
    /// without disturbing WFQ state.
    pub fn for_each_job(&self, f: &mut dyn FnMut(&Job)) {
        for tq in self.tenants.values() {
            for (_, job) in &tq.jobs {
                f(job);
            }
        }
    }

    /// Removes every queued job (sorted by id, like
    /// [`SubmitQueue::drain_matching`]) — the drain-to-sibling hook a
    /// cluster uses when a host loses its last healthy instance.
    pub fn drain_all(&mut self) -> Vec<Job> {
        self.drain_matching(&mut |_| true)
    }

    /// Offers a job. Admission control validates the streams and
    /// enforces the capacity bound; refusals come back as a
    /// [`RejectedJob`] so the caller can count and report them.
    ///
    /// # Errors
    ///
    /// [`RejectReason::QueueFull`] when the queue is at capacity,
    /// [`RejectReason::Malformed`] when validation fails.
    pub fn submit(&mut self, job: Job, now_us: u64) -> Result<(), RejectedJob> {
        if self.len >= self.capacity {
            return Err(RejectedJob {
                id: job.id,
                tenant: job.tenant,
                reason: RejectReason::QueueFull,
                rejected_at_us: now_us,
            });
        }
        if let Err(msg) = job.validate() {
            return Err(RejectedJob {
                id: job.id,
                tenant: job.tenant,
                reason: RejectReason::Malformed(msg),
                rejected_at_us: now_us,
            });
        }
        let default_weight = self.default_weight;
        let t = self.tenants.entry(job.tenant).or_insert_with(|| TenantQueue {
            weight: default_weight,
            ..TenantQueue::default()
        });
        if t.weight == 0 {
            t.weight = default_weight;
        }
        let cost = job.input_bytes().max(1) * VT_SCALE / t.weight as u64;
        let vft = self.vnow.max(t.last_vft) + cost;
        t.last_vft = vft;
        self.bytes += job.input_bytes();
        t.jobs.push_back((vft, job));
        self.len += 1;
        Ok(())
    }

    /// The tenant whose head job has the smallest virtual finish time
    /// among heads matching `key` (ties break toward the lower tenant
    /// id via the BTreeMap iteration order).
    fn best_tenant(&self, key: Option<&str>) -> Option<TenantId> {
        let mut best: Option<(u64, TenantId)> = None;
        for (&tenant, tq) in &self.tenants {
            if let Some((vft, job)) = tq.jobs.front() {
                if key.is_some_and(|k| &*job.spec_key != k) {
                    continue;
                }
                if best.is_none_or(|(bv, _)| *vft < bv) {
                    best = Some((*vft, tenant));
                }
            }
        }
        best.map(|(_, t)| t)
    }

    /// The position of the queued job minimizing `(prio(job), vft, id)`
    /// among *all* queued jobs matching `key` — not just tenant heads.
    /// Priority release deliberately breaks per-tenant FIFO (an EDF or
    /// SJF policy must be able to jump a tight job over its tenant's
    /// earlier submissions); the `(vft, id)` tie-break keeps the order
    /// total and deterministic.
    fn best_priority(
        &self,
        key: Option<&str>,
        prio: &mut dyn FnMut(&Job) -> u64,
    ) -> Option<(TenantId, usize)> {
        let mut best: Option<(u64, u64, u64, TenantId, usize)> = None;
        for (&tenant, tq) in &self.tenants {
            for (idx, (vft, job)) in tq.jobs.iter().enumerate() {
                if key.is_some_and(|k| &*job.spec_key != k) {
                    continue;
                }
                let p = prio(job);
                if best.is_none_or(|(bp, bv, bi, _, _)| (p, *vft, job.id) < (bp, bv, bi)) {
                    best = Some((p, *vft, job.id, tenant, idx));
                }
            }
        }
        best.map(|(_, _, _, t, i)| (t, i))
    }

    /// Peeks the job a priority policy would release next: the queued
    /// job minimizing `(prio, WFQ stamp, id)`, optionally restricted to
    /// a batching-compatibility key. Unlike [`SubmitQueue::peek`] this
    /// scans *all* queued jobs, so a high-priority job is reachable even
    /// behind its tenant's earlier submissions.
    pub fn peek_priority(
        &self,
        key: Option<&str>,
        prio: &mut dyn FnMut(&Job) -> u64,
    ) -> Option<&Job> {
        let (tenant, idx) = self.best_priority(key, prio)?;
        self.tenants[&tenant].jobs.get(idx).map(|(_, j)| j)
    }

    /// Pops the job [`SubmitQueue::peek_priority`] would return,
    /// advancing the virtual clock past its WFQ stamp (so tenants still
    /// pay for bytes released out of order).
    pub fn pop_priority(
        &mut self,
        key: Option<&str>,
        prio: &mut dyn FnMut(&Job) -> u64,
    ) -> Option<Job> {
        let (tenant, idx) = self.best_priority(key, prio)?;
        let tq = self.tenants.get_mut(&tenant).expect("best tenant exists");
        let (vft, job) = tq.jobs.remove(idx).expect("best index exists");
        self.vnow = self.vnow.max(vft);
        self.len -= 1;
        self.bytes -= job.input_bytes();
        Some(job)
    }

    /// Peeks the job WFQ would release next, optionally restricted to a
    /// batching-compatibility key.
    pub fn peek(&self, key: Option<&str>) -> Option<&Job> {
        let tenant = self.best_tenant(key)?;
        self.tenants[&tenant].jobs.front().map(|(_, j)| j)
    }

    /// Removes every queued job for which `pred` returns true,
    /// preserving order (and WFQ stamps) among the survivors. The host
    /// uses this to time out jobs that have waited past their budget
    /// and to drain the queue when no healthy instance remains; removed
    /// jobs come back sorted by id so downstream reporting is
    /// deterministic.
    pub fn drain_matching(&mut self, pred: &mut dyn FnMut(&Job) -> bool) -> Vec<Job> {
        let mut out = Vec::new();
        for tq in self.tenants.values_mut() {
            let mut kept = VecDeque::with_capacity(tq.jobs.len());
            for (vft, job) in tq.jobs.drain(..) {
                if pred(&job) {
                    out.push(job);
                } else {
                    kept.push_back((vft, job));
                }
            }
            tq.jobs = kept;
        }
        self.len -= out.len();
        self.bytes -= out.iter().map(|j| j.input_bytes()).sum::<u64>();
        out.sort_by_key(|j| j.id);
        out
    }

    /// Pops the job WFQ would release next, optionally restricted to a
    /// batching-compatibility key, advancing the virtual clock.
    pub fn pop(&mut self, key: Option<&str>) -> Option<Job> {
        let tenant = self.best_tenant(key)?;
        let tq = self.tenants.get_mut(&tenant).expect("best tenant exists");
        let (vft, job) = tq.jobs.pop_front().expect("best tenant has a head job");
        self.vnow = self.vnow.max(vft);
        self.len -= 1;
        self.bytes -= job.input_bytes();
        Some(job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleet_lang::{UnitBuilder, UnitSpec};
    use std::sync::Arc;

    fn byte_spec() -> Arc<UnitSpec> {
        let mut u = UnitBuilder::new("Byte", 8, 8);
        let acc = u.reg("acc", 8, 0);
        let inp = u.input();
        u.set(acc, acc ^ inp);
        Arc::new(u.build().unwrap())
    }

    fn job(id: u64, tenant: TenantId, bytes: usize, spec: &Arc<UnitSpec>) -> Job {
        Job::new(id, tenant, spec.clone(), vec![vec![0u8; bytes]])
    }

    #[test]
    fn capacity_bound_backpressures() {
        let spec = byte_spec();
        let mut q = SubmitQueue::new(2);
        assert!(q.submit(job(1, 0, 8, &spec), 0).is_ok());
        assert!(q.submit(job(2, 0, 8, &spec), 0).is_ok());
        let err = q.submit(job(3, 0, 8, &spec), 5).unwrap_err();
        assert_eq!(err.reason, RejectReason::QueueFull);
        assert_eq!(err.rejected_at_us, 5);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn malformed_jobs_are_refused_at_admission() {
        let spec = byte_spec();
        let mut q = SubmitQueue::new(8);
        let bad = Job::new(1, 0, spec.clone(), vec![]);
        assert!(matches!(
            q.submit(bad, 0).unwrap_err().reason,
            RejectReason::Malformed(_)
        ));
        assert!(q.is_empty());
    }

    #[test]
    fn per_tenant_order_is_fifo() {
        let spec = byte_spec();
        let mut q = SubmitQueue::new(8);
        for id in 0..4 {
            q.submit(job(id, 7, 16, &spec), 0).unwrap();
        }
        let ids: Vec<u64> = std::iter::from_fn(|| q.pop(None).map(|j| j.id)).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn equal_weights_interleave_by_bytes() {
        let spec = byte_spec();
        let mut q = SubmitQueue::new(16);
        // Tenant 0 queues one big job, tenant 1 four small ones; WFQ
        // releases all the small jobs before the big one finishes its
        // virtual transmission.
        q.submit(job(100, 0, 1024, &spec), 0).unwrap();
        for id in 0..4 {
            q.submit(job(id, 1, 64, &spec), 0).unwrap();
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop(None).map(|j| j.id)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 100]);
    }

    #[test]
    fn weights_bias_the_release_rate() {
        let spec = byte_spec();
        let mut q = SubmitQueue::new(64);
        q.set_weight(1, 1);
        q.set_weight(2, 3);
        for id in 0..12 {
            q.submit(job(id, 1, 64, &spec), 0).unwrap();
            q.submit(job(100 + id, 2, 64, &spec), 0).unwrap();
        }
        // In the first 8 releases, the weight-3 tenant should get about
        // three quarters of the slots.
        let mut heavy = 0;
        for _ in 0..8 {
            if q.pop(None).unwrap().tenant == 2 {
                heavy += 1;
            }
        }
        assert!(heavy >= 5, "weight-3 tenant got only {heavy}/8 releases");
    }

    #[test]
    fn key_filter_skips_incompatible_heads_without_reordering_tenants() {
        let byte = byte_spec();
        let mut wide = UnitBuilder::new("Wide", 32, 32);
        let acc = wide.reg("acc", 32, 0);
        let inp = wide.input();
        wide.set(acc, acc ^ inp);
        let wide = Arc::new(wide.build().unwrap());

        let mut q = SubmitQueue::new(8);
        q.submit(job(1, 0, 64, &byte), 0).unwrap();
        q.submit(Job::new(2, 1, wide.clone(), vec![vec![0u8; 64]]), 0).unwrap();
        q.submit(job(3, 1, 64, &byte), 0).unwrap();

        // Restricted to the byte key: tenant 0's head matches, tenant
        // 1's head is the wide job, so job 3 stays blocked behind it.
        assert_eq!(q.peek(Some("Byte:8x8")).unwrap().id, 1);
        assert_eq!(q.pop(Some("Byte:8x8")).unwrap().id, 1);
        assert!(q.pop(Some("Byte:8x8")).is_none(), "job 3 is head-of-line blocked");
        assert_eq!(q.pop(None).unwrap().id, 2);
        assert_eq!(q.pop(Some("Byte:8x8")).unwrap().id, 3);
    }

    #[test]
    fn drain_matching_removes_only_matches_and_keeps_wfq_order() {
        let spec = byte_spec();
        let mut q = SubmitQueue::new(16);
        for id in 0..6 {
            q.submit(job(id, (id % 2) as TenantId, 64, &spec), 0).unwrap();
        }
        let drained = q.drain_matching(&mut |j| j.id >= 4);
        assert_eq!(drained.iter().map(|j| j.id).collect::<Vec<_>>(), vec![4, 5]);
        assert_eq!(q.len(), 4);
        let rest: Vec<u64> = std::iter::from_fn(|| q.pop(None).map(|j| j.id)).collect();
        assert_eq!(rest.len(), 4);
        assert!(rest.iter().all(|&id| id < 4));
        assert!(q.is_empty());
    }

    #[test]
    fn priority_release_reaches_past_tenant_heads() {
        let spec = byte_spec();
        let mut q = SubmitQueue::new(8);
        // Tenant 0 queues a loose-deadline job ahead of a tight one;
        // plain WFQ releases in FIFO order, priority release jumps the
        // tight job over its own tenant's head.
        q.submit(job(1, 0, 64, &spec).with_deadline(9_000), 0).unwrap();
        q.submit(job(2, 0, 64, &spec).with_deadline(100), 0).unwrap();
        let mut by_deadline = |j: &Job| j.deadline_us.unwrap_or(u64::MAX);
        assert_eq!(q.peek_priority(None, &mut by_deadline).unwrap().id, 2);
        assert_eq!(q.pop_priority(None, &mut by_deadline).unwrap().id, 2);
        assert_eq!(q.pop_priority(None, &mut by_deadline).unwrap().id, 1);
        assert!(q.is_empty());

        // Equal priorities fall back to WFQ stamps: identical to pop().
        for id in 10..14 {
            q.submit(job(id, (id % 2) as TenantId, 64, &spec), 0).unwrap();
        }
        let mut flat = |_: &Job| 0u64;
        let order: Vec<u64> =
            std::iter::from_fn(|| q.pop_priority(None, &mut flat).map(|j| j.id)).collect();
        assert_eq!(order, vec![10, 11, 12, 13]);
    }

    #[test]
    fn priority_release_respects_the_key_filter() {
        let byte = byte_spec();
        let mut wide = UnitBuilder::new("Wide", 32, 32);
        let acc = wide.reg("acc", 32, 0);
        let inp = wide.input();
        wide.set(acc, acc ^ inp);
        let wide = Arc::new(wide.build().unwrap());

        let mut q = SubmitQueue::new(8);
        q.submit(Job::new(1, 0, wide, vec![vec![0u8; 64]]).with_deadline(10), 0).unwrap();
        q.submit(job(2, 0, 64, &byte).with_deadline(500), 0).unwrap();
        let mut by_deadline = |j: &Job| j.deadline_us.unwrap_or(u64::MAX);
        // The tightest job is Wide, but a Byte-locked batch must skip it.
        assert_eq!(q.pop_priority(Some("Byte:8x8"), &mut by_deadline).unwrap().id, 2);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn pressure_hooks_track_bytes_and_drain_everything() {
        let spec = byte_spec();
        let mut q = SubmitQueue::new(16);
        assert_eq!(q.queued_bytes(), 0);
        for id in 0..4 {
            q.submit(job(id, (id % 2) as TenantId, 64, &spec), 0).unwrap();
        }
        assert_eq!(q.queued_bytes(), 4 * 64);
        let mut seen = 0u64;
        q.for_each_job(&mut |j| seen += j.input_bytes());
        assert_eq!(seen, 4 * 64);

        q.pop(None).unwrap();
        assert_eq!(q.queued_bytes(), 3 * 64);
        let mut tight = |j: &Job| j.id;
        q.pop_priority(None, &mut tight).unwrap();
        assert_eq!(q.queued_bytes(), 2 * 64);

        let drained = q.drain_all();
        assert_eq!(drained.len(), 2);
        assert!(drained.windows(2).all(|w| w[0].id < w[1].id));
        assert!(q.is_empty());
        assert_eq!(q.queued_bytes(), 0);
    }

    #[test]
    fn idle_tenant_rejoins_at_current_virtual_time() {
        let spec = byte_spec();
        let mut q = SubmitQueue::new(16);
        // Tenant 0 drains a lot of virtual time.
        for id in 0..4 {
            q.submit(job(id, 0, 512, &spec), 0).unwrap();
        }
        for _ in 0..4 {
            q.pop(None);
        }
        // A fresh tenant submits now; it must not be owed the whole
        // backlog of virtual time (its first job lands after vnow, and
        // competes fairly with tenant 0's next job).
        q.submit(job(50, 1, 64, &spec), 0).unwrap();
        q.submit(job(10, 0, 128, &spec), 0).unwrap();
        assert_eq!(q.pop(None).unwrap().id, 50, "cheaper job gets the earlier stamp");
    }
}
