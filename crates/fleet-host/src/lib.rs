//! fleet-host: a multi-tenant job scheduler and serving runtime over
//! simulated F1 instances.
//!
//! The Fleet paper stops at one board: compile an app, replicate its
//! processing unit to fill the FPGA, run the streams. This crate builds
//! the serving layer above that board model. Tenants submit [`Job`]s —
//! an application spec plus input streams, optionally with a deadline —
//! into a bounded [`SubmitQueue`] with admission control and per-tenant
//! weighted fair queuing. A batch packer ([`pack_batch`]) bins
//! compatible jobs onto the PU slots of an instance run, sized by the
//! same area model the single-board flow uses. The [`Host`] drives a
//! pool of [`fleet_system::Instance`]s concurrently on a scoped worker
//! pool and drains per-job outputs in completion order.
//!
//! Everything is timed on a **virtual clock** in microseconds: arrivals
//! carry virtual timestamps, instance runs advance time by their
//! simulated duration, and host-side pack/drain costs come from a small
//! linear model. Wall-clock thread interleaving therefore cannot
//! perturb results — a serve is bit-for-bit deterministic for a fixed
//! workload, which the tests rely on.
//!
//! Scheduler decisions and per-job latency land in
//! [`fleet_trace::SchedCounters`] / [`fleet_trace::LatencyStats`] and
//! are exported through a hand-rolled JSON [`ServiceReport`].
//!
//! Beyond one-shot jobs, the host serves long-lived
//! [`fleet_session::Session`]s: clients open a session, append chunks
//! against a credit-based backpressure window, and read output windows
//! incrementally while the scheduler time-shares instances between
//! session quanta and job batches (see [`Host::serve_arrivals`] and the
//! [`arrival`] module).

#![warn(missing_docs)]

pub mod arrival;
pub mod job;
pub mod pack;
pub mod policy;
pub mod predict;
pub mod queue;
pub mod report;
pub mod scheduler;

pub use arrival::{Arrival, ArrivalSource, MixedArrivals, SessionOpen, VecArrivals};
pub use fleet_fault::FaultPlan;
pub use fleet_session::{
    AppendError, Session, SessionConfig, SessionId, SessionRecord, SessionState,
};
pub use job::{
    CompletedJob, FailedJob, Job, JobId, JobLatency, RejectReason, RejectedJob, TenantId,
};
pub use pack::{pack_batch, pack_batch_policy, top_up_batch, PackedBatch};
pub use policy::{
    doomed, predicted_completion_us, slo_admits, CostModel, DeferFill, EdfPack, FirstFit,
    PackPolicy, PolicyKind, ShortestJob, WeightedSlowdown,
};
pub use predict::{Predictor, SpecModel};
pub use queue::SubmitQueue;
pub use report::{ServiceReport, TenantReport};
pub use scheduler::{Host, HostConfig};
