//! Property-based tests for the submission queue and batch packer:
//! WFQ release order matches the analytic reference, bytes are
//! conserved per tenant end to end, and no tenant starves — all under
//! highly skewed stream-length distributions.

use std::sync::Arc;

use fleet_host::{pack_batch, Host, HostConfig, Job, SubmitQueue};
use fleet_lang::{UnitBuilder, UnitSpec};
use fleet_trace::SchedCounters;
use proptest::prelude::*;

/// An 8-bit echo unit: every input byte comes back out, so any
/// stream length is token-aligned and output bytes must equal input
/// bytes exactly.
fn identity_spec() -> Arc<UnitSpec> {
    let mut u = UnitBuilder::new("Identity", 8, 8);
    let inp = u.input();
    let nf = u.stream_finished().not_b();
    u.if_(nf, |u| u.emit(inp.clone()));
    Arc::new(u.build().unwrap())
}

/// Skewed job shapes: tenant id plus per-stream lengths spanning three
/// orders of magnitude (most tiny, some huge).
fn job_shapes() -> impl Strategy<Value = Vec<(u32, Vec<usize>)>> {
    proptest::collection::vec(
        (
            0u32..4,
            proptest::collection::vec(
                prop_oneof![1usize..=16, 16usize..=256, 256usize..=2048],
                1..=3,
            ),
        ),
        1..=20,
    )
}

fn build_jobs(shapes: &[(u32, Vec<usize>)], spec: &Arc<UnitSpec>) -> Vec<Job> {
    shapes
        .iter()
        .enumerate()
        .map(|(i, (tenant, lens))| {
            let streams =
                lens.iter().map(|&n| vec![(i % 251) as u8; n]).collect::<Vec<_>>();
            Job::new(i as u64, *tenant, spec.clone(), streams)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The queue's release order equals the analytic WFQ reference:
    /// with everything submitted up front, each tenant's k-th job is
    /// stamped with its cumulative weighted byte cost, and pops come
    /// out globally sorted by stamp (ties toward the lower tenant id).
    #[test]
    fn queue_release_order_matches_wfq_reference(shapes in job_shapes()) {
        let spec = identity_spec();
        let jobs = build_jobs(&shapes, &spec);
        let mut q = SubmitQueue::new(jobs.len());

        // Analytic stamps: cost = bytes * 1024 / weight (weight 1).
        let mut cum = [0u64; 4];
        let mut expect: Vec<(u64, u32, u64)> = Vec::new(); // (stamp, tenant, id)
        for job in &jobs {
            cum[job.tenant as usize] += job.input_bytes().max(1) * 1024;
            expect.push((cum[job.tenant as usize], job.tenant, job.id));
            q.submit(job.clone(), 0).unwrap();
        }
        expect.sort_by_key(|&(stamp, tenant, _)| (stamp, tenant));

        let got: Vec<u64> = std::iter::from_fn(|| q.pop(None).map(|j| j.id)).collect();
        let want: Vec<u64> = expect.iter().map(|&(_, _, id)| id).collect();
        prop_assert_eq!(got, want);
    }

    /// Draining a queue through the packer conserves every job: each
    /// submitted job is packed exactly once (none rejected — budgets
    /// cover the largest job) and batches carry exactly their members'
    /// streams, within the slot budget.
    #[test]
    fn packer_conserves_jobs_and_streams(shapes in job_shapes()) {
        let spec = identity_spec();
        let jobs = build_jobs(&shapes, &spec);
        let total_jobs = jobs.len();
        let mut q = SubmitQueue::new(total_jobs);
        for job in &jobs {
            q.submit(job.clone(), 0).unwrap();
        }

        let mut counters = SchedCounters::default();
        let mut rejected = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        while let Some(batch) =
            pack_batch(&mut q, 0, &mut |_| 4, 8, &mut counters, &mut rejected)
        {
            prop_assert!(batch.slots_used <= batch.slots);
            let streams: usize = batch.jobs.iter().map(|j| j.streams.len()).sum();
            prop_assert_eq!(batch.flat_streams().len(), streams);
            prop_assert_eq!(batch.slots_used, streams);
            for job in &batch.jobs {
                prop_assert!(seen.insert(job.id), "job {} packed twice", job.id);
            }
        }
        prop_assert!(q.is_empty());
        prop_assert!(rejected.is_empty());
        prop_assert_eq!(seen.len(), total_jobs);
        prop_assert_eq!(counters.jobs_packed as usize, total_jobs);
    }

    /// End to end through the host: every job completes (no tenant
    /// starves, whatever the skew) and bytes are conserved per tenant —
    /// the identity unit echoes, so each tenant's output bytes equal
    /// its input bytes exactly.
    #[test]
    fn serve_conserves_bytes_per_tenant(shapes in job_shapes()) {
        let spec = identity_spec();
        let jobs = build_jobs(&shapes, &spec);
        let mut submitted = [0u64; 4];
        for job in &jobs {
            submitted[job.tenant as usize] += job.input_bytes();
        }
        let total_jobs = jobs.len();

        let mut cfg = HostConfig::new(1);
        cfg.pu_slot_cap = 8;
        let report = Host::new(cfg).serve(jobs);

        prop_assert_eq!(report.completed.len(), total_jobs, "a job starved");
        prop_assert!(report.rejected.is_empty());
        prop_assert!(report.failed.is_empty());
        for (tenant, t) in &report.tenants {
            prop_assert_eq!(
                t.input_bytes, submitted[*tenant as usize],
                "tenant {} input bytes", tenant
            );
            prop_assert_eq!(
                t.output_bytes, t.input_bytes,
                "tenant {} bytes in != bytes out", tenant
            );
        }
    }
}
