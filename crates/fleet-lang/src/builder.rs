//! Ergonomic construction of [`UnitSpec`] programs.
//!
//! [`UnitBuilder`] plays the role of the Scala embedding in the paper:
//! ordinary Rust code runs at "elaboration time" and records Fleet
//! statements, so loops, helper functions, and compile-time parameters
//! can generate parameterized processing units.
//!
//! # Examples
//!
//! The identity unit from §3 of the paper:
//!
//! ```
//! use fleet_lang::UnitBuilder;
//!
//! let mut u = UnitBuilder::new("Identity", 8, 8);
//! let input = u.input();
//! let not_finished = u.stream_finished().not_b();
//! u.if_(not_finished, |u| {
//!     u.emit(input);
//! });
//! let spec = u.build().unwrap();
//! assert_eq!(spec.name, "Identity");
//! ```

use crate::expr::{E, ExprNode, IntoE};
use crate::stmt::{Block, Stmt};
use crate::types::{clog2, BramId, RegId, VecRegId, Width};
use crate::unit::{BramDef, RegDef, UnitSpec, VecRegDef};
use crate::validate::{self, ValidateError};

/// Handle to a scalar register declared on a [`UnitBuilder`].
///
/// `Reg` is `Copy` and converts into an expression reading the register's
/// current value; the arithmetic and comparison operators work on it
/// directly.
#[derive(Debug, Clone, Copy)]
pub struct Reg {
    id: RegId,
}

impl Reg {
    /// The register's id.
    pub fn id(self) -> RegId {
        self.id
    }

    /// Expression reading the register's current value.
    pub fn e(self) -> E {
        E::new(ExprNode::Reg(self.id))
    }
}

impl IntoE for Reg {
    fn into_e(self) -> E {
        self.e()
    }
}

impl IntoE for &Reg {
    fn into_e(self) -> E {
        self.e()
    }
}

/// Handle to a vector register declared on a [`UnitBuilder`].
#[derive(Debug, Clone, Copy)]
pub struct VecReg {
    id: VecRegId,
}

impl VecReg {
    /// The vector register's id.
    pub fn id(self) -> VecRegId {
        self.id
    }

    /// Random-access read of element `idx`.
    pub fn read(self, idx: impl IntoE) -> E {
        E::new(ExprNode::VecReg(self.id, idx.into_e()))
    }
}

/// Handle to a BRAM declared on a [`UnitBuilder`].
#[derive(Debug, Clone, Copy)]
pub struct Bram {
    id: BramId,
}

impl Bram {
    /// The BRAM's id.
    pub fn id(self) -> BramId {
        self.id
    }

    /// Read of the element at `addr`.
    ///
    /// The Fleet restrictions apply: in any virtual cycle a BRAM may be
    /// read at one address only, and read addresses may not themselves
    /// depend on BRAM reads.
    pub fn read(self, addr: impl IntoE) -> E {
        E::new(ExprNode::BramRead(self.id, addr.into_e()))
    }
}

macro_rules! forward_reg_ops {
    ($($trait:ident :: $method:ident),*) => {
        $(
            impl<R: IntoE> std::ops::$trait<R> for Reg {
                type Output = E;
                fn $method(self, rhs: R) -> E {
                    std::ops::$trait::$method(self.e(), rhs)
                }
            }
        )*
    };
}

forward_reg_ops!(
    Add::add,
    Sub::sub,
    Mul::mul,
    BitAnd::bitand,
    BitOr::bitor,
    BitXor::bitxor,
    Shl::shl,
    Shr::shr
);

impl Reg {
    /// Hardware equality comparator (see [`E::eq_e`]).
    pub fn eq_e(self, rhs: impl IntoE) -> E {
        self.e().eq_e(rhs)
    }
    /// Hardware inequality comparator.
    pub fn ne_e(self, rhs: impl IntoE) -> E {
        self.e().ne_e(rhs)
    }
    /// Unsigned less-than comparator.
    pub fn lt_e(self, rhs: impl IntoE) -> E {
        self.e().lt_e(rhs)
    }
    /// Unsigned less-or-equal comparator.
    pub fn le_e(self, rhs: impl IntoE) -> E {
        self.e().le_e(rhs)
    }
    /// Unsigned greater-than comparator.
    pub fn gt_e(self, rhs: impl IntoE) -> E {
        self.e().gt_e(rhs)
    }
    /// Unsigned greater-or-equal comparator.
    pub fn ge_e(self, rhs: impl IntoE) -> E {
        self.e().ge_e(rhs)
    }
    /// Bit slice of the register value.
    pub fn slice(self, hi: u16, lo: u16) -> E {
        self.e().slice(hi, lo)
    }
    /// Concatenation with the register value in the upper bits.
    pub fn concat(self, lo: impl IntoE) -> E {
        self.e().concat(lo)
    }
    /// Single-bit extraction.
    pub fn bit(self, idx: u16) -> E {
        self.e().bit(idx)
    }
    /// 2-way multiplexer with the register value as condition.
    pub fn mux(self, on_true: impl IntoE, on_false: impl IntoE) -> E {
        self.e().mux(on_true, on_false)
    }
    /// OR-reduction (nonzero test).
    pub fn any(self) -> E {
        self.e().any()
    }
    /// Boolean NOT.
    pub fn not_b(self) -> E {
        self.e().not_b()
    }
}

/// Builder for [`UnitSpec`] values.
///
/// Statements are recorded in order; conditional and loop bodies are
/// expressed as closures receiving the same builder. See the
/// [module docs](self) for an example and
/// [`fleet_lang`](crate) for the language reference.
#[derive(Debug)]
pub struct UnitBuilder {
    name: String,
    input_token_bits: Width,
    output_token_bits: Width,
    regs: Vec<RegDef>,
    vec_regs: Vec<VecRegDef>,
    brams: Vec<BramDef>,
    stack: Vec<Block>,
    while_depth: u32,
}

impl UnitBuilder {
    /// Starts a new unit with the given token sizes in bits.
    ///
    /// # Panics
    ///
    /// Panics if either token size is outside `1..=64`.
    pub fn new(name: impl Into<String>, input_token_bits: Width, output_token_bits: Width) -> Self {
        assert!(
            (1..=64).contains(&input_token_bits),
            "input token size must be in 1..=64 bits"
        );
        assert!(
            (1..=64).contains(&output_token_bits),
            "output token size must be in 1..=64 bits"
        );
        UnitBuilder {
            name: name.into(),
            input_token_bits,
            output_token_bits,
            regs: Vec::new(),
            vec_regs: Vec::new(),
            brams: Vec::new(),
            stack: vec![Vec::new()],
            while_depth: 0,
        }
    }

    /// Expression reading the current input token.
    pub fn input(&self) -> E {
        E::new(ExprNode::Input(self.input_token_bits))
    }

    /// 1-bit expression, true during the cleanup execution that runs once
    /// after the final input token.
    pub fn stream_finished(&self) -> E {
        E::new(ExprNode::StreamFinished)
    }

    /// Declares a scalar register with a reset value.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `1..=64` or `init` does not fit.
    pub fn reg(&mut self, name: impl Into<String>, width: Width, init: u64) -> Reg {
        assert!((1..=64).contains(&width), "register width must be in 1..=64");
        assert!(
            width == 64 || init < (1u64 << width),
            "register init value does not fit in {width} bits"
        );
        let id = RegId::new(self.regs.len() as u32, width);
        self.regs.push(RegDef { name: name.into(), width, init });
        Reg { id }
    }

    /// Declares a vector register of `elements` entries of `width` bits,
    /// each starting at `init`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `1..=64`, `elements` is zero, or
    /// `init` does not fit.
    pub fn vec_reg(
        &mut self,
        name: impl Into<String>,
        elements: usize,
        width: Width,
        init: u64,
    ) -> VecReg {
        assert!((1..=64).contains(&width), "vector register width must be in 1..=64");
        assert!(elements >= 1, "vector register must have at least one element");
        assert!(
            width == 64 || init < (1u64 << width),
            "vector register init value does not fit in {width} bits"
        );
        let id = VecRegId::new(self.vec_regs.len() as u32, width);
        self.vec_regs.push(VecRegDef { name: name.into(), width, elements, init });
        VecReg { id }
    }

    /// Declares a BRAM of at least `elements` entries of `width` bits.
    ///
    /// The element count is rounded up to a power of two (matching how
    /// FPGA tools allocate technology BRAMs); contents start zeroed.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `1..=64` or `elements` is zero.
    pub fn bram(&mut self, name: impl Into<String>, elements: usize, width: Width) -> Bram {
        assert!((1..=64).contains(&width), "BRAM data width must be in 1..=64");
        assert!(elements >= 1, "BRAM must have at least one element");
        let addr_width = clog2(elements.max(2));
        let id = BramId::new(self.brams.len() as u32, width, addr_width);
        self.brams.push(BramDef { name: name.into(), data_width: width, addr_width });
        Bram { id }
    }

    fn current(&mut self) -> &mut Block {
        self.stack.last_mut().expect("builder block stack is never empty")
    }

    /// Records a register assignment (commits at end of virtual cycle).
    pub fn set(&mut self, reg: Reg, value: impl IntoE) {
        let v = value.into_e();
        self.current().push(Stmt::SetReg(reg.id, v));
    }

    /// Records a vector-register element assignment.
    pub fn set_vec(&mut self, vr: VecReg, idx: impl IntoE, value: impl IntoE) {
        let (i, v) = (idx.into_e(), value.into_e());
        self.current().push(Stmt::SetVecReg(vr.id, i, v));
    }

    /// Records a BRAM write.
    pub fn write(&mut self, bram: Bram, addr: impl IntoE, value: impl IntoE) {
        let (a, v) = (addr.into_e(), value.into_e());
        self.current().push(Stmt::BramWrite(bram.id, a, v));
    }

    /// Records an output-token emission. At most one emit may execute per
    /// virtual cycle (checked dynamically by the software simulator).
    pub fn emit(&mut self, value: impl IntoE) {
        let v = value.into_e();
        self.current().push(Stmt::Emit(v));
    }

    fn scoped(&mut self, f: impl FnOnce(&mut Self)) -> Block {
        self.stack.push(Vec::new());
        f(self);
        self.stack.pop().expect("scoped block pushed above")
    }

    /// Records an `if` block; returns a chain handle for `else if` /
    /// `else`.
    pub fn if_(&mut self, cond: impl IntoE, f: impl FnOnce(&mut Self)) -> IfChain<'_> {
        let cond = cond.into_e();
        let body = self.scoped(f);
        let idx = {
            let block = self.current();
            block.push(Stmt::If { arms: vec![(cond, body)], else_body: Vec::new() });
            block.len() - 1
        };
        let depth = self.stack.len() - 1;
        IfChain { u: self, depth, idx }
    }

    /// Records an `if`/`else` pair in one call.
    pub fn if_else(
        &mut self,
        cond: impl IntoE,
        then_f: impl FnOnce(&mut Self),
        else_f: impl FnOnce(&mut Self),
    ) {
        self.if_(cond, then_f).else_(else_f);
    }

    /// Records a `while` loop.
    ///
    /// Loop virtual cycles execute the body without consuming the input
    /// token until the condition is false; loops may not nest.
    ///
    /// # Panics
    ///
    /// Panics if called inside another `while` body (the paper's language
    /// does not support nested loops).
    pub fn while_(&mut self, cond: impl IntoE, f: impl FnOnce(&mut Self)) {
        assert!(
            self.while_depth == 0,
            "nested while loops are not supported by the Fleet language"
        );
        let cond = cond.into_e();
        self.while_depth += 1;
        let body = self.scoped(f);
        self.while_depth -= 1;
        self.current().push(Stmt::While { cond, body });
    }

    /// Finishes the unit, validating the program.
    ///
    /// # Errors
    ///
    /// Returns the first hard violation found (bad widths, out-of-range
    /// slice, dependent BRAM reads, foreign state handles, nested loops).
    /// Soft restriction violations (possible multiple BRAM accesses or
    /// emits per virtual cycle) are left to the software simulator, per
    /// the paper.
    pub fn build(self) -> Result<UnitSpec, ValidateError> {
        let UnitBuilder {
            name,
            input_token_bits,
            output_token_bits,
            regs,
            vec_regs,
            brams,
            mut stack,
            while_depth: _,
        } = self;
        debug_assert_eq!(stack.len(), 1, "unbalanced builder blocks");
        let body = stack.pop().unwrap_or_default();
        let spec = UnitSpec {
            name,
            input_token_bits,
            output_token_bits,
            regs,
            vec_regs,
            brams,
            body,
        };
        validate::validate(&spec)?;
        Ok(spec)
    }
}

/// Chain handle returned by [`UnitBuilder::if_`] for attaching
/// `else if` / `else` arms.
#[derive(Debug)]
pub struct IfChain<'a> {
    u: &'a mut UnitBuilder,
    depth: usize,
    idx: usize,
}

impl<'a> IfChain<'a> {
    /// Adds an `else if` arm.
    pub fn elif(self, cond: impl IntoE, f: impl FnOnce(&mut UnitBuilder)) -> IfChain<'a> {
        let cond = cond.into_e();
        let body = self.u.scoped(f);
        match &mut self.u.stack[self.depth][self.idx] {
            Stmt::If { arms, .. } => arms.push((cond, body)),
            _ => unreachable!("IfChain index always points at an If statement"),
        }
        self
    }

    /// Adds the final `else` arm.
    pub fn else_(self, f: impl FnOnce(&mut UnitBuilder)) {
        let body = self.u.scoped(f);
        match &mut self.u.stack[self.depth][self.idx] {
            Stmt::If { else_body, .. } => *else_body = body,
            _ => unreachable!("IfChain index always points at an If statement"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::lit;

    #[test]
    fn builds_identity_unit() {
        let mut u = UnitBuilder::new("Identity", 8, 8);
        let inp = u.input();
        let nf = u.stream_finished().not_b();
        u.if_(nf, |u| u.emit(inp.clone()));
        let spec = u.build().unwrap();
        assert_eq!(spec.input_token_bits, 8);
        assert_eq!(spec.body.len(), 1);
    }

    #[test]
    fn histogram_example_from_paper() {
        // Figure 3 of the paper.
        let mut u = UnitBuilder::new("BlockFrequencies", 8, 8);
        let item_counter = u.reg("itemCounter", 7, 0);
        let frequencies = u.bram("frequencies", 256, 8);
        let idx = u.reg("frequenciesIdx", 9, 0);
        let input = u.input();
        u.if_(item_counter.eq_e(100u64), |u| {
            u.while_(idx.lt_e(256u64), |u| {
                u.emit(frequencies.read(idx));
                u.write(frequencies, idx, lit(0, 8));
                u.set(idx, idx + 1u64);
            });
            u.set(idx, lit(0, 9));
        });
        u.write(frequencies, input.clone(), frequencies.read(input) + 1u64);
        u.set(
            item_counter,
            item_counter.eq_e(100u64).mux(lit(1, 7), item_counter + 1u64),
        );
        let spec = u.build().unwrap();
        assert_eq!(spec.regs.len(), 2);
        assert_eq!(spec.brams.len(), 1);
        assert_eq!(spec.brams[0].elements(), 256);
    }

    #[test]
    #[should_panic(expected = "nested while")]
    fn nested_while_panics() {
        let mut u = UnitBuilder::new("Bad", 8, 8);
        u.while_(lit(1, 1), |u| {
            u.while_(lit(1, 1), |_| {});
        });
    }

    #[test]
    fn elif_and_else_arms_recorded() {
        let mut u = UnitBuilder::new("Chain", 8, 8);
        let r = u.reg("state", 2, 0);
        u.if_(r.eq_e(0u64), |u| u.emit(lit(0, 8)))
            .elif(r.eq_e(1u64), |u| u.emit(lit(1, 8)))
            .else_(|u| u.emit(lit(2, 8)));
        let spec = u.build().unwrap();
        match &spec.body[0] {
            Stmt::If { arms, else_body } => {
                assert_eq!(arms.len(), 2);
                assert_eq!(else_body.len(), 1);
            }
            other => panic!("expected If, got {other:?}"),
        }
    }

    #[test]
    fn bram_rounds_to_power_of_two() {
        let mut u = UnitBuilder::new("B", 8, 8);
        let b = u.bram("t", 300, 16);
        assert_eq!(b.id().elements(), 512);
        assert_eq!(b.id().addr_width(), 9);
    }
}
