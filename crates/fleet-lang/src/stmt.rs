//! Statements of the Fleet processing-unit language.
//!
//! A Fleet program body is a [`Block`] of statements with *concurrent*
//! semantics: every statement in a virtual cycle observes the same
//! pre-cycle state, and all state writes commit together at the end of
//! the virtual cycle (exactly like non-blocking assignment in RTL).

use crate::expr::E;
use crate::types::{BramId, RegId, VecRegId};

/// A sequence of statements. Ordering carries no execution-order meaning
/// (semantics are concurrent) but determines pretty-printing and the
/// priority of multiplexer chains built by the compiler.
pub type Block = Vec<Stmt>;

/// A Fleet statement.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// Register assignment, committed at the end of the virtual cycle.
    SetReg(RegId, E),
    /// Vector-register element assignment: `vr[idx] = value`.
    SetVecReg(VecRegId, E, E),
    /// BRAM write: `bram[addr] = value`. At most one may execute per BRAM
    /// per virtual cycle.
    BramWrite(BramId, E, E),
    /// Emits an output token. At most one may execute per virtual cycle.
    Emit(E),
    /// Conditional chain (`if` / `else if`* / `else`).
    ///
    /// `arms` holds the `if` and `else if` branches in order; `else_body`
    /// may be empty.
    If {
        /// `(condition, body)` pairs; conditions are evaluated as Booleans
        /// (nonzero = true) and tested in order.
        arms: Vec<(E, Block)>,
        /// Body executed when no arm condition holds.
        else_body: Block,
    },
    /// A `while` loop.
    ///
    /// While the (guard-qualified) condition holds, *loop virtual cycles*
    /// execute only the bodies of active loops, without consuming the
    /// input token. Once every loop condition in the program is false, a
    /// final virtual cycle executes all statements outside loop bodies and
    /// the input token is consumed. Loops may not nest.
    While {
        /// Loop condition, evaluated as a Boolean each virtual cycle.
        cond: E,
        /// Statements executed during loop virtual cycles.
        body: Block,
    },
}

impl Stmt {
    /// Visits this statement and all nested statements, pre-order.
    pub fn visit(&self, f: &mut impl FnMut(&Stmt)) {
        f(self);
        match self {
            Stmt::If { arms, else_body } => {
                for (_, body) in arms {
                    for s in body {
                        s.visit(f);
                    }
                }
                for s in else_body {
                    s.visit(f);
                }
            }
            Stmt::While { body, .. } => {
                for s in body {
                    s.visit(f);
                }
            }
            _ => {}
        }
    }

    /// Visits every expression appearing in this statement (conditions,
    /// addresses, values), including those in nested statements.
    pub fn visit_exprs(&self, f: &mut impl FnMut(&E)) {
        self.visit(&mut |s| match s {
            Stmt::SetReg(_, v) => f(v),
            Stmt::SetVecReg(_, i, v) => {
                f(i);
                f(v);
            }
            Stmt::BramWrite(_, a, v) => {
                f(a);
                f(v);
            }
            Stmt::Emit(v) => f(v),
            Stmt::If { arms, .. } => {
                for (c, _) in arms {
                    f(c);
                }
            }
            Stmt::While { cond, .. } => f(cond),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::lit;

    #[test]
    fn visit_counts_nested() {
        let s = Stmt::If {
            arms: vec![(lit(1, 1), vec![Stmt::Emit(lit(0, 8))])],
            else_body: vec![Stmt::Emit(lit(1, 8))],
        };
        let mut n = 0;
        s.visit(&mut |_| n += 1);
        assert_eq!(n, 3);
    }

    #[test]
    fn visit_exprs_sees_conditions_and_values() {
        let s = Stmt::While {
            cond: lit(1, 1),
            body: vec![Stmt::Emit(lit(7, 8))],
        };
        let mut n = 0;
        s.visit_exprs(&mut |_| n += 1);
        assert_eq!(n, 2); // cond + emit value
    }
}
