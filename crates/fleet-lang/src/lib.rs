//! # fleet-lang — the Fleet processing-unit language
//!
//! This crate implements the Fleet language from *"Fleet: A Framework for
//! Massively Parallel Streaming on FPGAs"* (ASPLOS 2020) as a
//! Rust-embedded DSL, mirroring the paper's Scala/Chisel embedding.
//!
//! A Fleet program describes the *virtual cycle* executed for every input
//! token of a stream: register/vector-register/BRAM state updates and
//! output-token emissions, with concurrent (non-blocking) semantics. The
//! framework later replicates the unit hundreds of times and feeds each
//! copy its own stream (see the `fleet-system` crate).
//!
//! ## Language features (Figure 2 of the paper)
//!
//! * Registers, vector registers, and an automatically pipelined BRAM
//!   type, all with user-specified bit widths.
//! * Chisel-like operators and conditional blocks (`if` / `else if` /
//!   `else`), all statements evaluated concurrently.
//! * `input` — the current input token; `emit` — produce an output token.
//! * `while` loops that take multiple virtual cycles per input token.
//! * `stream_finished` — one cleanup execution after the last token.
//!
//! ## Restrictions (checked statically here, dynamically in `fleet-isim`)
//!
//! * No dependent BRAM reads in a virtual cycle (hard error here).
//! * Each BRAM is read at one address and written at one address per
//!   virtual cycle; at most one `emit` per virtual cycle (dynamic).
//! * `while` loops do not nest (hard error).
//!
//! These restrictions are what let the compiler (`fleet-compiler`) always
//! generate a two-stage pipeline running one virtual cycle per real cycle.
//!
//! ## Example
//!
//! The frequency-counting unit of Figure 3:
//!
//! ```
//! use fleet_lang::{lit, UnitBuilder};
//!
//! let mut u = UnitBuilder::new("BlockFrequencies", 8, 8);
//! let item_counter = u.reg("itemCounter", 7, 0);
//! let frequencies = u.bram("frequencies", 256, 8);
//! let idx = u.reg("frequenciesIdx", 9, 0);
//! let input = u.input();
//!
//! u.if_(item_counter.eq_e(100u64), |u| {
//!     u.while_(idx.lt_e(256u64), |u| {
//!         u.emit(frequencies.read(idx));
//!         u.write(frequencies, idx, lit(0, 8));
//!         u.set(idx, idx + 1u64);
//!     });
//!     u.set(idx, lit(0, 9));
//! });
//! u.write(frequencies, input.clone(), frequencies.read(input) + 1u64);
//! u.set(
//!     item_counter,
//!     item_counter.eq_e(100u64).mux(lit(1, 7), item_counter + 1u64),
//! );
//!
//! let spec = u.build()?;
//! assert_eq!(spec.brams[0].elements(), 256);
//! # Ok::<(), fleet_lang::ValidateError>(())
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod builder;
pub mod display;
pub mod expr;
pub mod flatten;
pub mod patterns;
pub mod stmt;
pub mod types;
pub mod unit;
pub mod validate;

pub use analysis::{analyze, StaticReport, Verdict};
pub use builder::{Bram, IfChain, Reg, UnitBuilder, VecReg};
pub use expr::{lit, mask, min_width, BinOp, E, ExprNode, IntoE, UnaryOp};
pub use flatten::{and_all, or_all, FlatProgram, GuardedOp, OpKind};
pub use stmt::{Block, Stmt};
pub use types::{clog2, BramId, RegId, VecRegId, Width};
pub use unit::{BramDef, RegDef, UnitSpec, VecRegDef};
pub use validate::{validate, warnings, ValidateError, Violation, Warning};
