//! Library of common processing-unit patterns.
//!
//! §7.2 of the paper notes that managing byte-wise output and similar
//! recurring structures is "fairly complex" and hopes to "add library
//! code to Fleet to simplify this and other common patterns" — this
//! module is that library: elaboration-time helpers that generate Fleet
//! fragments. Everything here expands to plain language constructs; no
//! new hardware semantics are introduced.

use crate::builder::{Reg, UnitBuilder};
use crate::expr::{lit, min_width, E, IntoE};
use crate::types::Width;

/// Saturating decrement by a constant: `x <= k ? 0 : x - k`.
pub fn sat_sub(x: impl IntoE, k: u64) -> E {
    let x = x.into_e();
    x.le_e(k).mux(lit(0, x.width()), x.clone() - k)
}

/// Saturating increment by a constant within the expression's width.
pub fn sat_add(x: impl IntoE, k: u64) -> E {
    let x = x.into_e();
    let w = x.width();
    let max = crate::expr::mask(u64::MAX, w);
    x.gt_e(max - k).mux(lit(max, w), x.clone() + k)
}

/// Maximum of two expressions.
pub fn max2(a: impl IntoE, b: impl IntoE) -> E {
    let (a, b) = (a.into_e(), b.into_e());
    a.ge_e(b.clone()).mux(a.clone(), b)
}

/// Minimum of two expressions.
pub fn min2(a: impl IntoE, b: impl IntoE) -> E {
    let (a, b) = (a.into_e(), b.into_e());
    a.le_e(b.clone()).mux(a.clone(), b)
}

/// Balanced maximum tree over a slice.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn max_tree(xs: &[E]) -> E {
    assert!(!xs.is_empty(), "max_tree of nothing");
    if xs.len() == 1 {
        return xs[0].clone();
    }
    let mid = xs.len() / 2;
    max2(max_tree(&xs[..mid]), max_tree(&xs[mid..]))
}

/// Priority selection: the value of the first true condition, else
/// `default` — the mux chain the compiler builds for assignments.
pub fn priority_select(arms: &[(E, E)], default: impl IntoE) -> E {
    let mut acc = default.into_e();
    for (cond, val) in arms.iter().rev() {
        acc = cond.mux(val.clone(), acc);
    }
    acc
}

/// One-hot selection by index from a constant-position table.
pub fn index_select(idx: &E, values: &[E], default: impl IntoE) -> E {
    let arms: Vec<(E, E)> = values
        .iter()
        .enumerate()
        .map(|(k, v)| (idx.eq_e(k as u64), v.clone()))
        .collect();
    priority_select(&arms, default)
}

/// Multiplicative hash: `(x * constant) >> (in_bits - out_bits)`,
/// masked to `out_bits` — the Bloom-filter hashing pattern.
///
/// # Panics
///
/// Panics if `out_bits` exceeds the expression width.
pub fn mul_hash(x: impl IntoE, constant: u64, out_bits: Width) -> E {
    let x = x.into_e();
    let w = x.width();
    assert!(out_bits <= w, "hash output wider than input");
    let prod = (x * constant).slice(w - 1, 0);
    (prod >> (w - out_bits) as u64).slice(out_bits - 1, 0)
}

/// Declares a wrapping block counter that rolls over after `n` tokens,
/// returning the counter register and a condition that is true during
/// the virtual cycle processing the *first token after* a full block —
/// the Figure 3 histogram pattern. The caller must invoke
/// [`BlockCounter::advance`] once per consuming virtual cycle.
#[derive(Debug, Clone, Copy)]
pub struct BlockCounter {
    /// Counter register.
    pub reg: Reg,
    /// Block size.
    pub n: u64,
}

/// Creates a [`BlockCounter`] on the builder.
pub fn block_counter(u: &mut UnitBuilder, name: &str, n: u64) -> BlockCounter {
    let width = min_width(n);
    let reg = u.reg(name, width, 0);
    BlockCounter { reg, n }
}

impl BlockCounter {
    /// True when a full block has just completed (flush now).
    pub fn block_done(&self) -> E {
        self.reg.eq_e(self.n)
    }

    /// Records the advance statement; call once in the consuming path.
    pub fn advance(&self, u: &mut UnitBuilder) {
        let w = self.reg.id().width();
        u.set(
            self.reg,
            self.block_done().mux(lit(1, w), self.reg + 1u64),
        );
    }
}

/// A byte-granular bit packer: accumulates variable-width fields and
/// emits one byte per virtual cycle — the §7.1 integer-coding output
/// pattern that the paper calls "fairly complex" to hand-write.
///
/// Use inside a `while` loop: feed fields with [`BitPacker::insert`]
/// when [`BitPacker::can_insert`], emit with [`BitPacker::emit_byte`]
/// when [`BitPacker::has_byte`].
#[derive(Debug, Clone, Copy)]
pub struct BitPacker {
    /// Accumulator register (field width + 7 bits).
    pub buf: Reg,
    /// Bit-count register.
    pub nbits: Reg,
    max_field: u16,
}

/// Declares a [`BitPacker`] able to hold fields up to `max_field` bits.
pub fn bit_packer(u: &mut UnitBuilder, name: &str, max_field: u16) -> BitPacker {
    let buf = u.reg(format!("{name}Buf"), max_field + 7, 0);
    let nbits = u.reg(format!("{name}Bits"), min_width((max_field + 7) as u64), 0);
    BitPacker { buf, nbits, max_field }
}

impl BitPacker {
    /// True while fewer than 8 bits are buffered (safe to insert).
    pub fn can_insert(&self) -> E {
        self.nbits.lt_e(8u64)
    }

    /// True when a whole byte is available.
    pub fn has_byte(&self) -> E {
        self.nbits.ge_e(8u64)
    }

    /// True when a ragged tail (1..=7 bits) remains.
    pub fn has_tail(&self) -> E {
        self.nbits.gt_e(0u64).and_b(self.nbits.lt_e(8u64))
    }

    /// Inserts `value` (low `width_expr` bits) at the current position.
    pub fn insert(&self, u: &mut UnitBuilder, value: impl IntoE, width_expr: impl IntoE) {
        let v = value.into_e();
        let w = self.buf.id().width();
        let widened = if v.width() < w {
            lit(0, w - v.width()).concat(v)
        } else {
            v.slice(w - 1, 0)
        };
        u.set(self.buf, self.buf.e() | (widened << self.nbits.e()));
        u.set(self.nbits, self.nbits.e() + width_expr.into_e());
    }

    /// Emits the low byte and shifts (call when [`BitPacker::has_byte`]).
    pub fn emit_byte(&self, u: &mut UnitBuilder) {
        u.emit(self.buf.slice(7, 0));
        u.set(self.buf, self.buf >> 8u64);
        u.set(self.nbits, self.nbits - 8u64);
    }

    /// Emits the ragged tail byte and clears.
    pub fn emit_tail(&self, u: &mut UnitBuilder) {
        u.emit(self.buf.slice(7, 0));
        u.set(self.buf, lit(0, self.buf.id().width()));
        u.set(self.nbits, lit(0, self.nbits.id().width()));
    }

    /// Maximum field width accepted by [`BitPacker::insert`].
    pub fn max_field(&self) -> u16 {
        self.max_field
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::UnitBuilder;

    fn eval(e: &E) -> u64 {
        // Constant-fold through a throwaway evaluation: patterns used
        // here are state-free.
        use crate::expr::ExprNode;
        fn go(e: &E) -> u64 {
            let w = e.width();
            let raw = match e.node() {
                ExprNode::Const { value, .. } => *value,
                ExprNode::Binary(op, a, b) => {
                    use crate::expr::BinOp::*;
                    let (x, y) = (go(a), go(b));
                    match op {
                        Add => x.wrapping_add(y),
                        Sub => x.wrapping_sub(y),
                        Mul => x.wrapping_mul(y),
                        And => x & y,
                        Or => x | y,
                        Xor => x ^ y,
                        Shl => x.checked_shl(y as u32).unwrap_or(0),
                        Shr => x.checked_shr(y as u32).unwrap_or(0),
                        Eq => (x == y) as u64,
                        Ne => (x != y) as u64,
                        Lt => (x < y) as u64,
                        Le => (x <= y) as u64,
                        Gt => (x > y) as u64,
                        Ge => (x >= y) as u64,
                    }
                }
                ExprNode::Mux { cond, on_true, on_false } => {
                    if go(cond) != 0 {
                        go(on_true)
                    } else {
                        go(on_false)
                    }
                }
                ExprNode::Slice { arg, hi, lo } => {
                    (go(arg) >> lo) & crate::expr::mask(u64::MAX, hi - lo + 1)
                }
                ExprNode::Concat { hi, lo } => (go(hi) << lo.width()) | go(lo),
                ExprNode::Unary(op, a) => match op {
                    crate::expr::UnaryOp::Not => !go(a),
                    crate::expr::UnaryOp::ReduceOr => (go(a) != 0) as u64,
                    crate::expr::UnaryOp::ReduceAnd => {
                        (go(a) == crate::expr::mask(u64::MAX, a.width())) as u64
                    }
                },
                _ => panic!("stateful expression in constant test"),
            };
            crate::expr::mask(raw, w)
        }
        go(e)
    }

    #[test]
    fn saturating_helpers() {
        assert_eq!(eval(&sat_sub(lit(5, 8), 3)), 2);
        assert_eq!(eval(&sat_sub(lit(2, 8), 3)), 0);
        assert_eq!(eval(&sat_add(lit(250, 8), 10)), 255);
        assert_eq!(eval(&sat_add(lit(5, 8), 10)), 15);
    }

    #[test]
    fn max_tree_selects_maximum() {
        let xs: Vec<E> = [3u64, 9, 1, 7, 7, 2].iter().map(|&v| lit(v, 8)).collect();
        assert_eq!(eval(&max_tree(&xs)), 9);
        assert_eq!(eval(&min2(lit(4, 8), lit(6, 8))), 4);
    }

    #[test]
    fn index_select_picks_by_index() {
        let vals: Vec<E> = (10..14u64).map(|v| lit(v, 8)).collect();
        assert_eq!(eval(&index_select(&lit(2, 4), &vals, lit(0, 8))), 12);
        assert_eq!(eval(&index_select(&lit(9, 4), &vals, lit(99, 8))), 99);
    }

    #[test]
    fn mul_hash_is_stable() {
        let h = mul_hash(lit(0x1234_5678, 32), 0x9E37_79B1, 11);
        let expect = (0x1234_5678u32.wrapping_mul(0x9E37_79B1) >> 21) as u64;
        assert_eq!(eval(&h), expect);
        assert_eq!(h.width(), 11);
    }

    #[test]
    fn block_counter_builds_valid_unit() {
        let mut u = UnitBuilder::new("Blocks", 8, 8);
        let bc = block_counter(&mut u, "blk", 100);
        let inp = u.input();
        u.if_(bc.block_done(), |u| u.emit(inp.clone()));
        bc.advance(&mut u);
        assert!(u.build().is_ok());
    }

}
