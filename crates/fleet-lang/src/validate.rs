//! Static validation of [`UnitSpec`] programs.
//!
//! Hard violations (returned as errors) are things that can never be
//! compiled: malformed widths, out-of-range slices, handles from a
//! different unit, nested loops, and *dependent BRAM reads* — a read whose
//! address depends on another BRAM read, which cannot be scheduled in the
//! two-stage virtual-cycle pipeline (§3).
//!
//! The remaining Fleet restrictions — at most one BRAM read address, one
//! BRAM write, and one emit per virtual cycle — depend on run-time
//! conditions, so they are *warned* about here when syntactically possible
//! and enforced dynamically by the software simulator
//! (`fleet-isim`), exactly as the paper prescribes.

use std::error::Error;
use std::fmt;

use crate::expr::{E, ExprNode};
use crate::stmt::Stmt;
use crate::unit::UnitSpec;

/// A single hard validation violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A token size or state-element width outside `1..=64`.
    BadWidth {
        /// What carries the bad width.
        what: String,
        /// The offending width.
        width: u16,
    },
    /// An `Input` expression whose recorded width disagrees with the
    /// unit's input token size (handle reused across units).
    InputWidthMismatch {
        /// Width recorded on the expression.
        found: u16,
        /// The unit's input token size.
        expected: u16,
    },
    /// A state-element handle that does not belong to this unit.
    ForeignHandle {
        /// Description of the offending handle.
        what: String,
    },
    /// A bit slice extending past its operand's width.
    SliceOutOfRange {
        /// High bit of the slice.
        hi: u16,
        /// Low bit of the slice.
        lo: u16,
        /// Operand width.
        width: u16,
    },
    /// A BRAM read address that itself contains a BRAM read.
    DependentBramRead {
        /// Name of the BRAM with the dependent read.
        bram: String,
    },
    /// A `while` loop nested inside another `while` body.
    NestedWhile,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::BadWidth { what, width } => {
                write!(f, "{what} has width {width}, outside 1..=64")
            }
            Violation::InputWidthMismatch { found, expected } => write!(
                f,
                "input expression has width {found} but the unit's input token size is {expected}"
            ),
            Violation::ForeignHandle { what } => {
                write!(f, "{what} does not belong to this unit")
            }
            Violation::SliceOutOfRange { hi, lo, width } => {
                write!(f, "slice [{hi}:{lo}] exceeds operand width {width}")
            }
            Violation::DependentBramRead { bram } => write!(
                f,
                "read address of BRAM {bram} depends on another BRAM read; \
                 dependent reads cannot be pipelined"
            ),
            Violation::NestedWhile => {
                write!(f, "while loops may not nest")
            }
        }
    }
}

/// Validation failure: one or more hard violations.
#[derive(Debug, Clone)]
pub struct ValidateError {
    /// All violations found, in discovery order.
    pub violations: Vec<Violation>,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid Fleet unit: ")?;
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

impl Error for ValidateError {}

/// A soft restriction that cannot be proven statically and will be checked
/// dynamically by the software simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Warning {
    /// More than one syntactic read site for a BRAM.
    MultipleBramReadSites {
        /// BRAM name.
        bram: String,
        /// Number of syntactic read sites.
        count: usize,
    },
    /// More than one syntactic write site for a BRAM.
    MultipleBramWriteSites {
        /// BRAM name.
        bram: String,
        /// Number of syntactic write sites.
        count: usize,
    },
    /// More than one syntactic emit site.
    MultipleEmitSites {
        /// Number of syntactic emit sites.
        count: usize,
    },
}

impl fmt::Display for Warning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Warning::MultipleBramReadSites { bram, count } => write!(
                f,
                "BRAM {bram} has {count} read sites; they must be mutually exclusive \
                 or share an address at run time (checked by the software simulator)"
            ),
            Warning::MultipleBramWriteSites { bram, count } => write!(
                f,
                "BRAM {bram} has {count} write sites; at most one may execute per \
                 virtual cycle (checked by the software simulator)"
            ),
            Warning::MultipleEmitSites { count } => write!(
                f,
                "program has {count} emit sites; at most one may execute per \
                 virtual cycle (checked by the software simulator)"
            ),
        }
    }
}

/// Validates a unit, returning all hard violations found.
///
/// # Errors
///
/// Returns [`ValidateError`] when any hard violation exists; the unit must
/// not be compiled or simulated in that case.
pub fn validate(spec: &UnitSpec) -> Result<(), ValidateError> {
    let mut v = Vec::new();

    for (what, width) in [
        ("input token".to_string(), spec.input_token_bits),
        ("output token".to_string(), spec.output_token_bits),
    ] {
        if !(1..=64).contains(&width) {
            v.push(Violation::BadWidth { what, width });
        }
    }
    for r in &spec.regs {
        if !(1..=64).contains(&r.width) {
            v.push(Violation::BadWidth { what: format!("register {}", r.name), width: r.width });
        }
    }
    for vr in &spec.vec_regs {
        if !(1..=64).contains(&vr.width) {
            v.push(Violation::BadWidth {
                what: format!("vector register {}", vr.name),
                width: vr.width,
            });
        }
    }
    for b in &spec.brams {
        if !(1..=64).contains(&b.data_width) {
            v.push(Violation::BadWidth { what: format!("BRAM {}", b.name), width: b.data_width });
        }
    }

    // Walk statements: expression checks + loop nesting.
    fn walk_block(spec: &UnitSpec, body: &[Stmt], in_while: bool, v: &mut Vec<Violation>) {
        for s in body {
            match s {
                Stmt::If { arms, else_body } => {
                    for (c, b) in arms {
                        check_expr(spec, c, v);
                        walk_block(spec, b, in_while, v);
                    }
                    walk_block(spec, else_body, in_while, v);
                }
                Stmt::While { cond, body } => {
                    if in_while {
                        v.push(Violation::NestedWhile);
                    }
                    check_expr(spec, cond, v);
                    walk_block(spec, body, true, v);
                }
                Stmt::SetReg(r, val) => {
                    check_reg(spec, *r, v);
                    check_expr(spec, val, v);
                }
                Stmt::SetVecReg(vr, i, val) => {
                    check_vec_reg(spec, *vr, v);
                    check_expr(spec, i, v);
                    check_expr(spec, val, v);
                }
                Stmt::BramWrite(b, a, val) => {
                    check_bram(spec, *b, v);
                    check_expr(spec, a, v);
                    check_expr(spec, val, v);
                }
                Stmt::Emit(val) => check_expr(spec, val, v),
            }
        }
    }

    fn check_reg(spec: &UnitSpec, id: crate::types::RegId, v: &mut Vec<Violation>) {
        let idx = id.index();
        if idx >= spec.regs.len() || spec.regs[idx].width != id.width() {
            v.push(Violation::ForeignHandle { what: format!("register handle {id}") });
        }
    }
    fn check_vec_reg(spec: &UnitSpec, id: crate::types::VecRegId, v: &mut Vec<Violation>) {
        let idx = id.index();
        if idx >= spec.vec_regs.len() || spec.vec_regs[idx].width != id.width() {
            v.push(Violation::ForeignHandle { what: format!("vector register handle {id}") });
        }
    }
    fn check_bram(spec: &UnitSpec, id: crate::types::BramId, v: &mut Vec<Violation>) {
        let idx = id.index();
        if idx >= spec.brams.len()
            || spec.brams[idx].data_width != id.data_width()
            || spec.brams[idx].addr_width != id.addr_width()
        {
            v.push(Violation::ForeignHandle { what: format!("BRAM handle {id}") });
        }
    }

    fn check_expr(spec: &UnitSpec, e: &E, v: &mut Vec<Violation>) {
        e.visit(&mut |node| {
            let w = node.width();
            if w > 64 {
                v.push(Violation::BadWidth { what: "expression (concatenation too wide)".to_string(), width: w });
            }
        });
        e.visit(&mut |node| match node.node() {
            ExprNode::Input(w)
                if *w != spec.input_token_bits => {
                    v.push(Violation::InputWidthMismatch {
                        found: *w,
                        expected: spec.input_token_bits,
                    });
                }
            ExprNode::Reg(id) => check_reg(spec, *id, v),
            ExprNode::VecReg(id, _) => check_vec_reg(spec, *id, v),
            ExprNode::BramRead(id, addr) => {
                check_bram(spec, *id, v);
                if addr.contains_bram_read() {
                    let name = spec
                        .brams
                        .get(id.index())
                        .map(|b| b.name.clone())
                        .unwrap_or_else(|| id.to_string());
                    v.push(Violation::DependentBramRead { bram: name });
                }
            }
            ExprNode::Slice { arg, hi, lo }
                if (*hi >= arg.width() || hi < lo) => {
                    v.push(Violation::SliceOutOfRange {
                        hi: *hi,
                        lo: *lo,
                        width: arg.width(),
                    });
                }
            _ => {}
        });
    }

    walk_block(spec, &spec.body, false, &mut v);

    // Deduplicate identical violations (shared subtrees are visited once
    // per use site).
    v.dedup();

    if v.is_empty() {
        Ok(())
    } else {
        Err(ValidateError { violations: v })
    }
}

/// Reports soft restrictions that need dynamic checking.
pub fn warnings(spec: &UnitSpec) -> Vec<Warning> {
    let mut read_sites = vec![0usize; spec.brams.len()];
    let mut write_sites = vec![0usize; spec.brams.len()];
    let mut emit_sites = 0usize;

    for s in &spec.body {
        s.visit(&mut |stmt| match stmt {
            Stmt::BramWrite(b, _, _)
                if b.index() < write_sites.len() => {
                    write_sites[b.index()] += 1;
                }
            Stmt::Emit(_) => emit_sites += 1,
            _ => {}
        });
        s.visit_exprs(&mut |e| {
            e.visit(&mut |node| {
                if let ExprNode::BramRead(b, _) = node.node() {
                    if b.index() < read_sites.len() {
                        read_sites[b.index()] += 1;
                    }
                }
            });
        });
    }

    let mut out = Vec::new();
    for (i, &n) in read_sites.iter().enumerate() {
        if n > 1 {
            out.push(Warning::MultipleBramReadSites { bram: spec.brams[i].name.clone(), count: n });
        }
    }
    for (i, &n) in write_sites.iter().enumerate() {
        if n > 1 {
            out.push(Warning::MultipleBramWriteSites {
                bram: spec.brams[i].name.clone(),
                count: n,
            });
        }
    }
    if emit_sites > 1 {
        out.push(Warning::MultipleEmitSites { count: emit_sites });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::UnitBuilder;
    use crate::expr::lit;

    #[test]
    fn valid_unit_passes() {
        let mut u = UnitBuilder::new("Ok", 8, 8);
        let r = u.reg("r", 8, 0);
        u.set(r, r + 1u64);
        assert!(u.build().is_ok());
    }

    #[test]
    fn dependent_bram_read_rejected() {
        let mut u = UnitBuilder::new("Dep", 8, 8);
        let a = u.bram("a", 16, 8);
        let b = u.bram("b", 16, 4);
        // a[b[0]] — classic dependent read from §3.
        u.emit(a.read(b.read(lit(0, 4))));
        let err = u.build().unwrap_err();
        assert!(err
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DependentBramRead { .. })));
    }

    #[test]
    fn slice_out_of_range_rejected() {
        let mut u = UnitBuilder::new("Slice", 8, 8);
        let inp = u.input();
        u.emit(inp.slice(9, 0)); // input is 8 bits
        let err = u.build().unwrap_err();
        assert!(err
            .violations
            .iter()
            .any(|v| matches!(v, Violation::SliceOutOfRange { .. })));
    }

    #[test]
    fn foreign_handle_rejected() {
        let mut other = UnitBuilder::new("Other", 8, 8);
        let foreign = other.reg("x", 5, 0);
        let mut u = UnitBuilder::new("Mine", 8, 8);
        u.set(foreign, lit(1, 5));
        let err = u.build().unwrap_err();
        assert!(err
            .violations
            .iter()
            .any(|v| matches!(v, Violation::ForeignHandle { .. })));
    }

    #[test]
    fn warnings_flag_multiple_emit_sites() {
        let mut u = UnitBuilder::new("W", 8, 8);
        let r = u.reg("s", 1, 0);
        u.if_else(
            r.eq_e(0u64),
            |u| u.emit(lit(0, 8)),
            |u| u.emit(lit(1, 8)),
        );
        let spec = u.build().unwrap();
        let w = warnings(&spec);
        assert!(w.iter().any(|w| matches!(w, Warning::MultipleEmitSites { count: 2 })));
    }

    #[test]
    fn error_display_is_informative() {
        let e = ValidateError { violations: vec![Violation::NestedWhile] };
        let s = e.to_string();
        assert!(s.contains("while loops may not nest"));
    }
}
