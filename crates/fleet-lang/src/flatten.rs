//! Flattening of a structured Fleet program into guarded primitive
//! operations.
//!
//! Both the software simulator and the RTL compiler need the same view of
//! a program: every primitive operation (register assignment, vector
//! register assignment, BRAM write, emit) together with the exact
//! condition under which it executes in a virtual cycle. This module
//! computes that view once so the two consumers cannot diverge.
//!
//! Conditions are built per the paper (§4): an operation nested in
//! conditional blocks executes when the conjunction of all enclosing
//! conditions holds; `else if` / `else` arms add the negations of the
//! preceding arms; a `while` body contributes its loop condition; and
//! operations *outside* every loop body additionally require `while_done`
//! (the negation of the disjunction of all effective loop conditions),
//! which the consumers add themselves via [`FlatProgram::loop_conds`].

use crate::expr::{E, IntoE};
use crate::stmt::{Block, Stmt};
use crate::types::{BramId, RegId, VecRegId};

/// A primitive operation.
#[derive(Debug, Clone)]
pub enum OpKind {
    /// `reg <- value`
    SetReg(RegId, E),
    /// `vec[idx] <- value`
    SetVecReg(VecRegId, E, E),
    /// `bram[addr] <- value`
    BramWrite(BramId, E, E),
    /// `emit(value)`
    Emit(E),
}

/// A primitive operation with its execution guard.
#[derive(Debug, Clone)]
pub struct GuardedOp {
    /// Conjunction of 1-bit guard expressions; empty means
    /// unconditional (within its loop/non-loop phase).
    pub guard: Vec<E>,
    /// Whether the operation sits inside a `while` body (executes during
    /// loop virtual cycles) or outside (executes in the final virtual
    /// cycle once `while_done`).
    pub in_loop: bool,
    /// The operation itself.
    pub op: OpKind,
}

impl GuardedOp {
    /// Folds the guard list into a single 1-bit expression (`true` when
    /// empty).
    pub fn guard_expr(&self) -> E {
        and_all(&self.guard)
    }
}

/// ANDs a slice of Boolean expressions, yielding constant 1 when empty.
pub fn and_all(guards: &[E]) -> E {
    let mut it = guards.iter();
    match it.next() {
        None => true.into_e(),
        Some(first) => it.fold(first.any(), |acc, g| acc.and_b(g)),
    }
}

/// ORs a slice of Boolean expressions, yielding constant 0 when empty.
pub fn or_all(conds: &[E]) -> E {
    let mut it = conds.iter();
    match it.next() {
        None => false.into_e(),
        Some(first) => it.fold(first.any(), |acc, g| acc.or_b(g)),
    }
}

/// The flattened view of a program body.
#[derive(Debug, Clone, Default)]
pub struct FlatProgram {
    /// All primitive operations with guards, in source order.
    pub ops: Vec<GuardedOp>,
    /// Effective condition of each `while` loop: its own condition ANDed
    /// with every enclosing `if` guard. A loop virtual cycle runs while
    /// any of these holds; `while_done` is the negation of their
    /// disjunction.
    pub loop_conds: Vec<E>,
}

impl FlatProgram {
    /// Flattens a program body.
    pub fn build(body: &Block) -> FlatProgram {
        let mut fp = FlatProgram::default();
        let mut guard = Vec::new();
        flatten_block(body, &mut guard, false, &mut fp);
        fp
    }

    /// `while_done`: true when no loop condition holds. Programs without
    /// loops get constant true.
    pub fn while_done(&self) -> E {
        if self.loop_conds.is_empty() {
            true.into_e()
        } else {
            or_all(&self.loop_conds).not_b()
        }
    }

    /// Guarded operations targeting register `reg`, in source order.
    pub fn reg_ops(&self, reg: RegId) -> impl Iterator<Item = &GuardedOp> {
        self.ops
            .iter()
            .filter(move |g| matches!(&g.op, OpKind::SetReg(r, _) if *r == reg))
    }

    /// Guarded BRAM writes targeting `bram`, in source order.
    pub fn bram_writes(&self, bram: BramId) -> impl Iterator<Item = &GuardedOp> {
        self.ops
            .iter()
            .filter(move |g| matches!(&g.op, OpKind::BramWrite(b, _, _) if *b == bram))
    }

    /// Guarded emits, in source order.
    pub fn emits(&self) -> impl Iterator<Item = &GuardedOp> {
        self.ops
            .iter()
            .filter(|g| matches!(&g.op, OpKind::Emit(_)))
    }
}

fn flatten_block(body: &Block, guard: &mut Vec<E>, in_loop: bool, out: &mut FlatProgram) {
    for stmt in body {
        match stmt {
            Stmt::SetReg(r, v) => out.ops.push(GuardedOp {
                guard: guard.clone(),
                in_loop,
                op: OpKind::SetReg(*r, v.clone()),
            }),
            Stmt::SetVecReg(vr, i, v) => out.ops.push(GuardedOp {
                guard: guard.clone(),
                in_loop,
                op: OpKind::SetVecReg(*vr, i.clone(), v.clone()),
            }),
            Stmt::BramWrite(b, a, v) => out.ops.push(GuardedOp {
                guard: guard.clone(),
                in_loop,
                op: OpKind::BramWrite(*b, a.clone(), v.clone()),
            }),
            Stmt::Emit(v) => out.ops.push(GuardedOp {
                guard: guard.clone(),
                in_loop,
                op: OpKind::Emit(v.clone()),
            }),
            Stmt::If { arms, else_body } => {
                // Each arm's guard: its condition AND the negation of all
                // preceding arm conditions.
                let mut not_prior: Vec<E> = Vec::new();
                for (cond, arm_body) in arms {
                    let depth = guard.len();
                    guard.extend(not_prior.iter().cloned());
                    guard.push(cond.any());
                    flatten_block(arm_body, guard, in_loop, out);
                    guard.truncate(depth);
                    not_prior.push(cond.not_b());
                }
                if !else_body.is_empty() {
                    let depth = guard.len();
                    guard.extend(not_prior.iter().cloned());
                    flatten_block(else_body, guard, in_loop, out);
                    guard.truncate(depth);
                }
            }
            Stmt::While { cond, body } => {
                // Effective loop condition: enclosing guards AND own cond.
                let mut full = guard.clone();
                full.push(cond.any());
                out.loop_conds.push(and_all(&full));
                let depth = guard.len();
                guard.push(cond.any());
                flatten_block(body, guard, true, out);
                guard.truncate(depth);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::lit;

    fn emit(v: u64) -> Stmt {
        Stmt::Emit(lit(v, 8))
    }

    #[test]
    fn unconditional_op_has_empty_guard() {
        let fp = FlatProgram::build(&vec![emit(1)]);
        assert_eq!(fp.ops.len(), 1);
        assert!(fp.ops[0].guard.is_empty());
        assert!(!fp.ops[0].in_loop);
        assert!(fp.loop_conds.is_empty());
    }

    #[test]
    fn if_else_guards_are_exclusive() {
        let body = vec![Stmt::If {
            arms: vec![(lit(1, 1), vec![emit(1)]), (lit(0, 1), vec![emit(2)])],
            else_body: vec![emit(3)],
        }];
        let fp = FlatProgram::build(&body);
        assert_eq!(fp.ops.len(), 3);
        // if arm: 1 guard; elif arm: !c0 && c1 = 2 guards; else: 2 negations.
        assert_eq!(fp.ops[0].guard.len(), 1);
        assert_eq!(fp.ops[1].guard.len(), 2);
        assert_eq!(fp.ops[2].guard.len(), 2);
    }

    #[test]
    fn while_inside_if_gets_conjoined_condition() {
        let body = vec![Stmt::If {
            arms: vec![(
                lit(1, 1),
                vec![Stmt::While { cond: lit(1, 1), body: vec![emit(9)] }],
            )],
            else_body: vec![],
        }];
        let fp = FlatProgram::build(&body);
        assert_eq!(fp.loop_conds.len(), 1);
        assert_eq!(fp.ops.len(), 1);
        assert!(fp.ops[0].in_loop);
        // guard inside the loop: enclosing if cond + loop cond
        assert_eq!(fp.ops[0].guard.len(), 2);
    }

    #[test]
    fn ops_after_loop_are_outside() {
        let body = vec![
            Stmt::While { cond: lit(1, 1), body: vec![emit(1)] },
            emit(2),
        ];
        let fp = FlatProgram::build(&body);
        assert!(fp.ops[0].in_loop);
        assert!(!fp.ops[1].in_loop);
        assert_eq!(fp.loop_conds.len(), 1);
    }

    #[test]
    fn while_done_constant_true_without_loops() {
        let fp = FlatProgram::build(&vec![emit(1)]);
        // evaluates to constant 1; just check it is a 1-bit expression
        assert_eq!(fp.while_done().width(), 1);
    }
}
