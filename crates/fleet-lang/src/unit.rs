//! The [`UnitSpec`] type: a complete Fleet processing-unit definition.

use crate::stmt::Block;
use crate::types::{BramId, RegId, VecRegId, Width};

/// Definition of a scalar register.
#[derive(Debug, Clone)]
pub struct RegDef {
    /// Human-readable name used in diagnostics and generated RTL.
    pub name: String,
    /// Bit width, in `1..=64`.
    pub width: Width,
    /// Reset/initial value.
    pub init: u64,
}

/// Definition of a vector register (random-access register file).
#[derive(Debug, Clone)]
pub struct VecRegDef {
    /// Human-readable name.
    pub name: String,
    /// Bit width of each element.
    pub width: Width,
    /// Element count.
    pub elements: usize,
    /// Initial value of every element.
    pub init: u64,
}

/// Definition of a BRAM.
///
/// BRAMs have one read port and one write port, a one-cycle read latency
/// in hardware (hidden by the compiler's automatic pipelining), and start
/// zero-initialized, matching FPGA behaviour assumed by the paper.
#[derive(Debug, Clone)]
pub struct BramDef {
    /// Human-readable name.
    pub name: String,
    /// Bit width of each element.
    pub data_width: Width,
    /// Address width; the BRAM holds `1 << addr_width` elements.
    pub addr_width: Width,
}

impl BramDef {
    /// Number of elements.
    pub fn elements(&self) -> usize {
        1usize << self.addr_width
    }
}

/// A complete Fleet processing-unit specification.
///
/// Build one with [`UnitBuilder`](crate::builder::UnitBuilder), then
/// validate it with [`UnitSpec::validate`] before handing it to the
/// interpreter or compiler.
#[derive(Debug, Clone)]
pub struct UnitSpec {
    /// Unit name (used as the RTL module name).
    pub name: String,
    /// Input token size in bits; the input stream is consumed in tokens
    /// of this size.
    pub input_token_bits: Width,
    /// Output token size in bits.
    pub output_token_bits: Width,
    /// Scalar registers.
    pub regs: Vec<RegDef>,
    /// Vector registers.
    pub vec_regs: Vec<VecRegDef>,
    /// BRAMs.
    pub brams: Vec<BramDef>,
    /// Program body.
    pub body: Block,
}

impl UnitSpec {
    /// Id handle for register `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn reg_id(&self, index: usize) -> RegId {
        RegId::new(index as u32, self.regs[index].width)
    }

    /// Id handle for vector register `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn vec_reg_id(&self, index: usize) -> VecRegId {
        VecRegId::new(index as u32, self.vec_regs[index].width)
    }

    /// Id handle for BRAM `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn bram_id(&self, index: usize) -> BramId {
        let d = &self.brams[index];
        BramId::new(index as u32, d.data_width, d.addr_width)
    }

    /// Total state bits held in registers and vector registers.
    pub fn register_state_bits(&self) -> usize {
        self.regs.iter().map(|r| r.width as usize).sum::<usize>()
            + self
                .vec_regs
                .iter()
                .map(|v| v.width as usize * v.elements)
                .sum::<usize>()
    }

    /// Total state bits held in BRAMs.
    pub fn bram_state_bits(&self) -> usize {
        self.brams
            .iter()
            .map(|b| b.data_width as usize * b.elements())
            .sum()
    }
}
