//! Pretty-printing of Fleet programs in the paper's surface syntax.
//!
//! The output mirrors the `unit` syntax of Figure 3 and is used for
//! diagnostics, documentation, and the lines-of-code experiment (Fig. 8).
//!
//! Expressions are reference-counted DAGs; subexpressions used more than
//! once are rendered as named `wire` definitions (exactly the temporary
//! wires a human would write in real Fleet source), keeping the output
//! linear in the circuit size.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::expr::{E, ExprNode, UnaryOp};
use crate::stmt::Stmt;
use crate::unit::UnitSpec;

struct Renderer<'a> {
    spec: &'a UnitSpec,
    refs: HashMap<*const ExprNode, usize>,
    names: HashMap<*const ExprNode, String>,
    wire_defs: Vec<String>,
    counter: usize,
}

impl<'a> Renderer<'a> {
    fn new(spec: &'a UnitSpec) -> Renderer<'a> {
        Renderer {
            spec,
            refs: HashMap::new(),
            names: HashMap::new(),
            wire_defs: Vec::new(),
            counter: 0,
        }
    }

    /// Counts DAG in-edges so shared nodes get wire names.
    fn count_refs(&mut self, e: &E) {
        *self.refs.entry(e.node() as *const ExprNode).or_insert(0) += 1;
        if self.refs[&(e.node() as *const ExprNode)] > 1 {
            return; // children already counted on first encounter
        }
        match e.node() {
            ExprNode::Const { .. }
            | ExprNode::Input(_)
            | ExprNode::StreamFinished
            | ExprNode::Reg(_) => {}
            ExprNode::VecReg(_, i) => self.count_refs(i),
            ExprNode::BramRead(_, a) => self.count_refs(a),
            ExprNode::Unary(_, a) => self.count_refs(a),
            ExprNode::Binary(_, a, b) => {
                self.count_refs(a);
                self.count_refs(b);
            }
            ExprNode::Slice { arg, .. } => self.count_refs(arg),
            ExprNode::Concat { hi, lo } => {
                self.count_refs(hi);
                self.count_refs(lo);
            }
            ExprNode::Mux { cond, on_true, on_false } => {
                self.count_refs(cond);
                self.count_refs(on_true);
                self.count_refs(on_false);
            }
        }
    }

    fn is_leaf(e: &E) -> bool {
        matches!(
            e.node(),
            ExprNode::Const { .. }
                | ExprNode::Input(_)
                | ExprNode::StreamFinished
                | ExprNode::Reg(_)
        )
    }

    /// Renders a use of `e`: a wire name if shared, inline otherwise.
    fn expr(&mut self, e: &E) -> String {
        let key = e.node() as *const ExprNode;
        if let Some(name) = self.names.get(&key) {
            return name.clone();
        }
        if !Self::is_leaf(e) && self.refs.get(&key).copied().unwrap_or(0) > 1 {
            let body = self.expr_inline(e);
            let name = format!("w{}", self.counter);
            self.counter += 1;
            self.wire_defs.push(format!("{name} := wire({body})"));
            self.names.insert(key, name.clone());
            return name;
        }
        self.expr_inline(e)
    }

    fn expr_inline(&mut self, e: &E) -> String {
        match e.node() {
            ExprNode::Const { value, .. } => format!("{value}"),
            ExprNode::Input(_) => "input".to_string(),
            ExprNode::StreamFinished => "stream_finished".to_string(),
            ExprNode::Reg(r) => self
                .spec
                .regs
                .get(r.index())
                .map(|d| d.name.clone())
                .unwrap_or_else(|| r.to_string()),
            ExprNode::VecReg(vr, i) => {
                let name = self
                    .spec
                    .vec_regs
                    .get(vr.index())
                    .map(|d| d.name.clone())
                    .unwrap_or_else(|| vr.to_string());
                let idx = self.expr(i);
                format!("{name}[{idx}]")
            }
            ExprNode::BramRead(b, a) => {
                let name = self
                    .spec
                    .brams
                    .get(b.index())
                    .map(|d| d.name.clone())
                    .unwrap_or_else(|| b.to_string());
                let addr = self.expr(a);
                format!("{name}[{addr}]")
            }
            ExprNode::Unary(op, a) => {
                let arg = self.expr(a);
                match op {
                    UnaryOp::Not => format!("~{arg}"),
                    UnaryOp::ReduceOr => format!("|{arg}"),
                    UnaryOp::ReduceAnd => format!("&{arg}"),
                }
            }
            ExprNode::Binary(op, a, b) => {
                let l = self.expr(a);
                let r = self.expr(b);
                format!("({l} {} {r})", op.symbol())
            }
            ExprNode::Slice { arg, hi, lo } => {
                let a = self.expr(arg);
                format!("{a}[{hi}:{lo}]")
            }
            ExprNode::Concat { hi, lo } => {
                let h = self.expr(hi);
                let l = self.expr(lo);
                format!("{{{h}, {l}}}")
            }
            ExprNode::Mux { cond, on_true, on_false } => {
                let c = self.expr(cond);
                let t = self.expr(on_true);
                let f = self.expr(on_false);
                format!("({c} ? {t} : {f})")
            }
        }
    }

    fn block(&mut self, body: &[Stmt], level: usize, out: &mut String) {
        for s in body {
            match s {
                Stmt::SetReg(r, v) => {
                    let rhs = self.expr(v);
                    indent(out, level);
                    let name = &self.spec.regs[r.index()].name;
                    let _ = writeln!(out, "{name} = {rhs}");
                }
                Stmt::SetVecReg(vr, i, v) => {
                    let idx = self.expr(i);
                    let rhs = self.expr(v);
                    indent(out, level);
                    let name = &self.spec.vec_regs[vr.index()].name;
                    let _ = writeln!(out, "{name}[{idx}] = {rhs}");
                }
                Stmt::BramWrite(b, a, v) => {
                    let addr = self.expr(a);
                    let rhs = self.expr(v);
                    indent(out, level);
                    let name = &self.spec.brams[b.index()].name;
                    let _ = writeln!(out, "{name}[{addr}] = {rhs}");
                }
                Stmt::Emit(v) => {
                    let rhs = self.expr(v);
                    indent(out, level);
                    let _ = writeln!(out, "emit({rhs})");
                }
                Stmt::If { arms, else_body } => {
                    for (k, (c, b)) in arms.iter().enumerate() {
                        let cond = self.expr(c);
                        indent(out, level);
                        let kw = if k == 0 { "if" } else { "} else if" };
                        let _ = writeln!(out, "{kw} ({cond}) {{");
                        self.block(b, level + 1, out);
                    }
                    if !else_body.is_empty() {
                        indent(out, level);
                        out.push_str("} else {\n");
                        self.block(else_body, level + 1, out);
                    }
                    indent(out, level);
                    out.push_str("}\n");
                }
                Stmt::While { cond, body } => {
                    let c = self.expr(cond);
                    indent(out, level);
                    let _ = writeln!(out, "while ({c}) {{");
                    self.block(body, level + 1, out);
                    indent(out, level);
                    out.push_str("}\n");
                }
            }
        }
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

/// Renders a unit in Fleet surface syntax.
pub fn render(spec: &UnitSpec) -> String {
    let mut r = Renderer::new(spec);
    for s in &spec.body {
        s.visit_exprs(&mut |e| r.count_refs(e));
    }
    let mut body = String::new();
    r.block(&spec.body, 1, &mut body);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "unit {}(inputTokenSize={}, outputTokenSize={}) {{",
        spec.name, spec.input_token_bits, spec.output_token_bits
    );
    for reg in &spec.regs {
        let _ = writeln!(out, "  {} := reg(bits={}, init={})", reg.name, reg.width, reg.init);
    }
    for v in &spec.vec_regs {
        let _ = writeln!(
            out,
            "  {} := vecreg(elements={}, bits={}, init={})",
            v.name, v.elements, v.width, v.init
        );
    }
    for b in &spec.brams {
        let _ = writeln!(
            out,
            "  {} := bram(elements={}, bitsPerElmt={})",
            b.name,
            b.elements(),
            b.data_width
        );
    }
    for w in &r.wire_defs {
        let _ = writeln!(out, "  {w}");
    }
    out.push_str(&body);
    out.push_str("}\n");
    out
}

/// Renders a single expression (diagnostics).
pub fn expr(spec: &UnitSpec, e: &E) -> String {
    let mut r = Renderer::new(spec);
    r.expr_inline(e)
}

/// Counts the "lines of Fleet code" of a unit: the number of non-empty
/// rendered lines, the measure used in the Figure 8 comparison.
pub fn loc(spec: &UnitSpec) -> usize {
    render(spec).lines().filter(|l| !l.trim().is_empty()).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::UnitBuilder;
    use crate::expr::lit;

    #[test]
    fn renders_histogram_like_paper() {
        let mut u = UnitBuilder::new("BlockFrequencies", 8, 8);
        let c = u.reg("itemCounter", 7, 0);
        let f = u.bram("frequencies", 256, 8);
        let input = u.input();
        u.if_(c.eq_e(100u64), |u| u.emit(f.read(lit(0, 8))));
        u.write(f, input.clone(), f.read(input) + 1u64);
        let spec = u.build().unwrap();
        let text = render(&spec);
        assert!(text.contains("unit BlockFrequencies(inputTokenSize=8, outputTokenSize=8) {"));
        assert!(text.contains("itemCounter := reg(bits=7, init=0)"));
        assert!(text.contains("frequencies := bram(elements=256, bitsPerElmt=8)"));
        assert!(text.contains("if ((itemCounter == 100)) {"));
        assert!(loc(&spec) >= 6);
    }

    #[test]
    fn shared_subexpressions_become_wires() {
        let mut u = UnitBuilder::new("Shared", 8, 8);
        let a = u.reg("a", 8, 0);
        let shared = a + 1u64;
        u.set(a, shared.clone() ^ shared.clone());
        let spec = u.build().unwrap();
        let text = render(&spec);
        assert!(text.contains(":= wire("), "shared node should be a wire:\n{text}");
    }

    #[test]
    fn deep_shared_chain_renders_in_linear_time() {
        // A 64-level chain where each level references the previous
        // twice: tree rendering would be 2^64 nodes.
        let mut u = UnitBuilder::new("Chain", 8, 8);
        let r = u.reg("r", 8, 0);
        let mut e = r.e();
        for _ in 0..64 {
            e = e.clone() + e.clone();
        }
        u.set(r, e);
        let spec = u.build().unwrap();
        let text = render(&spec);
        assert!(text.len() < 20_000);
    }
}
