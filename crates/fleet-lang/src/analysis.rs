//! Static mutual-exclusivity analysis of the Fleet restrictions.
//!
//! §3 of the paper checks the one-read/one-write/one-emit restrictions
//! dynamically in the software simulator and notes that "a static
//! analyzer could also guarantee that certain well-structured programs
//! do not violate the restrictions". This module is that analyzer: it
//! proves, for the common well-structured cases, that at most one of a
//! set of conflicting operations can execute in any virtual cycle.
//!
//! The proof technique is syntactic arm exclusivity: two operations are
//! *exclusive* when their paths through the program diverge at different
//! arms of the same `if`/`else if`/`else` chain, or when exactly one of
//! them lives inside a `while` body (loop virtual cycles and the final
//! virtual cycle are disjoint). BRAM reads additionally count as
//! compatible when they share one syntactic address expression. Programs
//! the analyzer cannot prove safe are still checked dynamically by the
//! software simulator — the analyzer never rejects a program, it only
//! upgrades confidence.

use std::collections::HashMap;

use crate::expr::{E, ExprNode};
use crate::stmt::{Block, Stmt};
use crate::unit::UnitSpec;

/// Identity of an `if` chain within the body (by traversal order).
type IfId = u32;

/// Path of one operation: which arm it took at each enclosing `if`
/// (`usize::MAX` = the else arm), plus whether it is inside a loop body.
#[derive(Debug, Clone, PartialEq, Eq)]
struct OpPath {
    arms: Vec<(IfId, usize)>,
    in_loop: bool,
}

impl OpPath {
    /// Whether two operations can never execute in the same virtual
    /// cycle.
    fn exclusive_with(&self, other: &OpPath) -> bool {
        if self.in_loop != other.in_loop {
            // Loop virtual cycles execute only loop bodies; the final
            // virtual cycle executes only non-loop statements.
            return true;
        }
        for &(i, a) in &self.arms {
            for &(j, b) in &other.arms {
                if i == j && a != b {
                    return true;
                }
            }
        }
        false
    }
}

/// One potentially conflicting operation site.
#[derive(Debug, Clone)]
struct Site {
    path: OpPath,
    /// For BRAM reads: the address expression (pointer identity used for
    /// same-address compatibility).
    addr: Option<E>,
}

/// Verdict for one restriction on one resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// At most one site exists, or all pairs are provably exclusive —
    /// the restriction can never be violated.
    StaticallySafe,
    /// Exclusivity could not be proven; the software simulator's dynamic
    /// checks remain authoritative.
    NeedsDynamicCheck,
}

/// Full static-analysis report for a unit.
#[derive(Debug, Clone)]
pub struct StaticReport {
    /// Per-BRAM read-port verdicts, indexed like `spec.brams`.
    pub bram_reads: Vec<Verdict>,
    /// Per-BRAM write-port verdicts.
    pub bram_writes: Vec<Verdict>,
    /// Emit verdict.
    pub emits: Verdict,
}

impl StaticReport {
    /// Whether every restriction is statically safe (dynamic checking
    /// could be disabled for this program, as the paper suggests).
    pub fn fully_safe(&self) -> bool {
        self.emits == Verdict::StaticallySafe
            && self
                .bram_reads
                .iter()
                .chain(self.bram_writes.iter())
                .all(|v| *v == Verdict::StaticallySafe)
    }
}

fn pairwise_safe(sites: &[Site]) -> Verdict {
    for (i, a) in sites.iter().enumerate() {
        for b in &sites[i + 1..] {
            let same_addr = match (&a.addr, &b.addr) {
                (Some(x), Some(y)) => std::ptr::eq(x.node(), y.node()),
                _ => false,
            };
            if !same_addr && !a.path.exclusive_with(&b.path) {
                return Verdict::NeedsDynamicCheck;
            }
        }
    }
    Verdict::StaticallySafe
}

struct Collector {
    next_if: IfId,
    reads: HashMap<usize, Vec<Site>>,
    writes: HashMap<usize, Vec<Site>>,
    emits: Vec<Site>,
}

impl Collector {
    fn collect_reads(&mut self, e: &E, path: &OpPath) {
        e.visit(&mut |n| {
            if let ExprNode::BramRead(id, addr) = n.node() {
                self.reads
                    .entry(id.index())
                    .or_default()
                    .push(Site { path: path.clone(), addr: Some(addr.clone()) });
            }
        });
    }

    fn walk(&mut self, body: &Block, path: &OpPath) {
        for s in body {
            match s {
                Stmt::SetReg(_, v) => self.collect_reads(v, path),
                Stmt::SetVecReg(_, i, v) => {
                    self.collect_reads(i, path);
                    self.collect_reads(v, path);
                }
                Stmt::BramWrite(b, a, v) => {
                    self.collect_reads(a, path);
                    self.collect_reads(v, path);
                    self.writes
                        .entry(b.index())
                        .or_default()
                        .push(Site { path: path.clone(), addr: None });
                }
                Stmt::Emit(v) => {
                    self.collect_reads(v, path);
                    self.emits.push(Site { path: path.clone(), addr: None });
                }
                Stmt::If { arms, else_body } => {
                    let id = self.next_if;
                    self.next_if += 1;
                    for (k, (cond, arm)) in arms.iter().enumerate() {
                        // Reads in conditions execute unconditionally.
                        self.collect_reads(cond, path);
                        let mut p = path.clone();
                        p.arms.push((id, k));
                        self.walk(arm, &p);
                    }
                    let mut p = path.clone();
                    p.arms.push((id, usize::MAX));
                    self.walk(else_body, &p);
                }
                Stmt::While { cond, body } => {
                    self.collect_reads(cond, path);
                    let p = OpPath { arms: path.arms.clone(), in_loop: true };
                    self.walk(body, &p);
                }
            }
        }
    }
}

/// Runs the static analyzer over a unit.
pub fn analyze(spec: &UnitSpec) -> StaticReport {
    let mut c = Collector {
        next_if: 0,
        reads: HashMap::new(),
        writes: HashMap::new(),
        emits: Vec::new(),
    };
    let root = OpPath { arms: Vec::new(), in_loop: false };
    c.walk(&spec.body, &root);

    let empty: Vec<Site> = Vec::new();
    StaticReport {
        bram_reads: (0..spec.brams.len())
            .map(|b| pairwise_safe(c.reads.get(&b).unwrap_or(&empty)))
            .collect(),
        bram_writes: (0..spec.brams.len())
            .map(|b| pairwise_safe(c.writes.get(&b).unwrap_or(&empty)))
            .collect(),
        emits: pairwise_safe(&c.emits),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::UnitBuilder;
    use crate::expr::lit;

    #[test]
    fn single_emit_is_safe() {
        let mut u = UnitBuilder::new("One", 8, 8);
        let inp = u.input();
        u.emit(inp);
        let spec = u.build().unwrap();
        assert_eq!(analyze(&spec).emits, Verdict::StaticallySafe);
    }

    #[test]
    fn if_else_emits_are_safe() {
        // The §7.4 OpenCL example the HLS tool cannot schedule at II=1:
        // the analyzer proves the arms exclusive.
        let mut u = UnitBuilder::new("TwoArms", 8, 8);
        let st = u.reg("state", 1, 0);
        u.if_else(
            st.eq_e(0u64),
            |u| u.emit(lit(0, 8)),
            |u| u.emit(lit(1, 8)),
        );
        let spec = u.build().unwrap();
        assert_eq!(analyze(&spec).emits, Verdict::StaticallySafe);
    }

    #[test]
    fn sibling_ifs_need_dynamic_checks() {
        // Two separate `if`s whose conditions might both hold.
        let mut u = UnitBuilder::new("TwoIfs", 8, 8);
        let a = u.reg("a", 1, 0);
        let b = u.reg("b", 1, 0);
        u.if_(a.e(), |u| u.emit(lit(0, 8)));
        u.if_(b.e(), |u| u.emit(lit(1, 8)));
        let spec = u.build().unwrap();
        assert_eq!(analyze(&spec).emits, Verdict::NeedsDynamicCheck);
    }

    #[test]
    fn loop_vs_final_cycle_is_exclusive() {
        // Figure 3's structure: an emit inside the while body and a BRAM
        // write both inside and outside — provably exclusive per cycle.
        let mut u = UnitBuilder::new("LoopSplit", 8, 8);
        let b = u.bram("m", 16, 8);
        let idx = u.reg("i", 5, 0);
        let input = u.input();
        u.while_(idx.lt_e(16u64), |u| {
            u.emit(b.read(idx.slice(3, 0)));
            u.write(b, idx.slice(3, 0), lit(0, 8));
            u.set(idx, idx + 1u64);
        });
        u.write(b, input.slice(3, 0), input.clone());
        let spec = u.build().unwrap();
        let r = analyze(&spec);
        assert_eq!(r.emits, Verdict::StaticallySafe);
        assert_eq!(r.bram_writes[0], Verdict::StaticallySafe);
    }

    #[test]
    fn same_address_reads_are_compatible() {
        let mut u = UnitBuilder::new("SameAddr", 8, 8);
        let b = u.bram("m", 16, 8);
        let input = u.input();
        let addr = input.slice(3, 0);
        // Same syntactic address expression used twice (shared node).
        u.emit(b.read(addr.clone()) ^ b.read(addr));
        let spec = u.build().unwrap();
        assert_eq!(analyze(&spec).bram_reads[0], Verdict::StaticallySafe);
    }

    #[test]
    fn different_address_reads_same_arm_need_dynamic() {
        let mut u = UnitBuilder::new("DiffAddr", 8, 8);
        let b = u.bram("m", 16, 8);
        let input = u.input();
        u.emit(b.read(input.slice(3, 0)) ^ b.read(input.slice(7, 4)));
        let spec = u.build().unwrap();
        assert_eq!(analyze(&spec).bram_reads[0], Verdict::NeedsDynamicCheck);
    }

    #[test]
    fn elif_chain_arms_are_mutually_exclusive() {
        let mut u = UnitBuilder::new("Chain", 8, 8);
        let st = u.reg("s", 2, 0);
        u.if_(st.eq_e(0u64), |u| u.emit(lit(0, 8)))
            .elif(st.eq_e(1u64), |u| u.emit(lit(1, 8)))
            .else_(|u| u.emit(lit(2, 8)));
        let spec = u.build().unwrap();
        assert_eq!(analyze(&spec).emits, Verdict::StaticallySafe);
    }
}
