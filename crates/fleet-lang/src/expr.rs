//! Expression trees for the Fleet processing-unit language.
//!
//! Expressions are immutable, reference-counted DAGs built through the
//! [`E`] handle type. Every expression has a *bit width* in `1..=64`;
//! operations follow hardware conventions: arithmetic and bitwise
//! operators produce `max(lhs, rhs)` bits with wrap-around, comparisons
//! produce a single bit, shifts keep the width of the shifted value, and
//! results are always masked to their width.

use std::fmt;
use std::sync::Arc;

use crate::types::{BramId, RegId, VecRegId, Width};

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Bitwise complement within the operand's width.
    Not,
    /// OR-reduction of all bits to a single bit.
    ReduceOr,
    /// AND-reduction of all bits to a single bit.
    ReduceAnd,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (result width = lhs width).
    Shl,
    /// Logical shift right (result width = lhs width).
    Shr,
    /// Equality (1-bit result).
    Eq,
    /// Inequality (1-bit result).
    Ne,
    /// Unsigned less-than (1-bit result).
    Lt,
    /// Unsigned less-or-equal (1-bit result).
    Le,
    /// Unsigned greater-than (1-bit result).
    Gt,
    /// Unsigned greater-or-equal (1-bit result).
    Ge,
}

impl BinOp {
    /// Whether the operator produces a single-bit Boolean result.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Verilog-style operator token, used by the pretty printer.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
        }
    }
}

/// A node in the expression DAG.
///
/// Nodes are shared via [`E`]; user code never constructs `ExprNode`
/// values directly.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ExprNode {
    /// An unsigned constant with an explicit width.
    Const {
        /// The constant value (fits in `width` bits).
        value: u64,
        /// Bit width.
        width: Width,
    },
    /// The current input token; the width is the unit's input token size
    /// and is recorded at construction time by the builder.
    Input(Width),
    /// 1-bit flag: true during the cleanup execution after the last token.
    StreamFinished,
    /// Current value of a register.
    Reg(RegId),
    /// Random-access read of a vector register element.
    VecReg(VecRegId, E),
    /// Read of a BRAM at the given address (1 virtual-cycle semantics).
    BramRead(BramId, E),
    /// Unary operation.
    Unary(UnaryOp, E),
    /// Binary operation.
    Binary(BinOp, E, E),
    /// Bit slice `[hi:lo]`, inclusive.
    Slice {
        /// Operand.
        arg: E,
        /// High bit (inclusive).
        hi: u16,
        /// Low bit (inclusive).
        lo: u16,
    },
    /// Concatenation `{hi, lo}`; `hi` occupies the upper bits.
    Concat {
        /// Upper bits.
        hi: E,
        /// Lower bits.
        lo: E,
    },
    /// 2-way multiplexer: `cond ? on_true : on_false`.
    Mux {
        /// Select condition (nonzero = true).
        cond: E,
        /// Value when the condition holds.
        on_true: E,
        /// Value otherwise.
        on_false: E,
    },
}

/// A cheaply clonable handle to an expression.
///
/// `E` supports the Rust arithmetic/bitwise operators plus comparison
/// *methods* ([`E::eq_e`], [`E::lt_e`], …) that build hardware comparators
/// (Rust's `PartialEq`/`PartialOrd` must return `bool`, so they cannot be
/// used to build circuits).
///
/// # Examples
///
/// ```
/// use fleet_lang::{lit, E};
/// let a = lit(3, 8);
/// let b = lit(4, 8);
/// let sum: E = a.clone() + b;
/// assert_eq!(sum.width(), 8);
/// let is_seven = sum.eq_e(lit(7, 8));
/// assert_eq!(is_seven.width(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct E(Arc<EData>);

#[derive(PartialEq, Eq, Hash)]
struct EData {
    node: ExprNode,
    width: Width,
}

impl fmt::Debug for E {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0.node)
    }
}

/// Creates an unsigned constant expression with an explicit bit width.
///
/// # Panics
///
/// Panics if `width` is 0 or greater than 64, or if `value` does not fit
/// in `width` bits.
pub fn lit(value: u64, width: u16) -> E {
    assert!(
        (1..=64).contains(&width),
        "literal width must be in 1..=64, got {width}"
    );
    assert!(
        width == 64 || value < (1u64 << width),
        "literal value {value} does not fit in {width} bits"
    );
    E::new(ExprNode::Const { value, width })
}

/// Smallest width that can represent `value` (at least 1).
pub fn min_width(value: u64) -> u16 {
    (64 - value.leading_zeros()).max(1) as u16
}

impl E {
    pub(crate) fn new(node: ExprNode) -> E {
        let width = width_of(&node);
        E(Arc::new(EData { node, width }))
    }

    /// The underlying node.
    pub fn node(&self) -> &ExprNode {
        &self.0.node
    }

    /// Bit width of this expression's value (cached at construction, so
    /// this is O(1) even on deeply shared DAGs).
    pub fn width(&self) -> Width {
        self.0.width
    }
}

/// Width rules of the language, computed from children's cached widths.
fn width_of(node: &ExprNode) -> Width {
    {
        match node {
            ExprNode::Const { width, .. } => *width,
            ExprNode::Input(width) => *width,
            ExprNode::StreamFinished => 1,
            ExprNode::Reg(id) => id.width(),
            ExprNode::VecReg(id, _) => id.width(),
            ExprNode::BramRead(id, _) => id.data_width(),
            ExprNode::Unary(op, a) => match op {
                UnaryOp::Not => a.width(),
                UnaryOp::ReduceOr | UnaryOp::ReduceAnd => 1,
            },
            ExprNode::Binary(op, a, b) => {
                if op.is_comparison() {
                    1
                } else if matches!(op, BinOp::Shl | BinOp::Shr) {
                    a.width()
                } else {
                    a.width().max(b.width())
                }
            }
            ExprNode::Slice { hi, lo, .. } => hi - lo + 1,
            ExprNode::Concat { hi, lo } => hi.width() + lo.width(),
            ExprNode::Mux { on_true, on_false, .. } => on_true.width().max(on_false.width()),
        }
    }
}

impl E {

    /// Builds a bitwise NOT of this expression.
    pub fn not(&self) -> E {
        E::new(ExprNode::Unary(UnaryOp::Not, self.clone()))
    }

    /// OR-reduction to a single bit (nonzero test).
    pub fn any(&self) -> E {
        E::new(ExprNode::Unary(UnaryOp::ReduceOr, self.clone()))
    }

    /// AND-reduction to a single bit (all-ones test).
    pub fn all(&self) -> E {
        E::new(ExprNode::Unary(UnaryOp::ReduceAnd, self.clone()))
    }

    fn cmp_op(&self, op: BinOp, rhs: impl IntoE) -> E {
        E::new(ExprNode::Binary(op, self.clone(), rhs.into_e()))
    }

    /// Hardware equality comparator (1-bit result).
    pub fn eq_e(&self, rhs: impl IntoE) -> E {
        self.cmp_op(BinOp::Eq, rhs)
    }

    /// Hardware inequality comparator (1-bit result).
    pub fn ne_e(&self, rhs: impl IntoE) -> E {
        self.cmp_op(BinOp::Ne, rhs)
    }

    /// Unsigned less-than comparator (1-bit result).
    pub fn lt_e(&self, rhs: impl IntoE) -> E {
        self.cmp_op(BinOp::Lt, rhs)
    }

    /// Unsigned less-or-equal comparator (1-bit result).
    pub fn le_e(&self, rhs: impl IntoE) -> E {
        self.cmp_op(BinOp::Le, rhs)
    }

    /// Unsigned greater-than comparator (1-bit result).
    pub fn gt_e(&self, rhs: impl IntoE) -> E {
        self.cmp_op(BinOp::Gt, rhs)
    }

    /// Unsigned greater-or-equal comparator (1-bit result).
    pub fn ge_e(&self, rhs: impl IntoE) -> E {
        self.cmp_op(BinOp::Ge, rhs)
    }

    /// 2-way multiplexer: `self ? on_true : on_false`.
    ///
    /// `self` is interpreted as a Boolean (nonzero = true).
    pub fn mux(&self, on_true: impl IntoE, on_false: impl IntoE) -> E {
        E::new(ExprNode::Mux {
            cond: self.clone(),
            on_true: on_true.into_e(),
            on_false: on_false.into_e(),
        })
    }

    /// Inclusive bit slice `[hi:lo]`.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi` is not below the expression width
    /// (checked again during validation for `Input`).
    pub fn slice(&self, hi: u16, lo: u16) -> E {
        assert!(hi >= lo, "slice hi ({hi}) must be >= lo ({lo})");
        E::new(ExprNode::Slice { arg: self.clone(), hi, lo })
    }

    /// Single-bit extraction.
    pub fn bit(&self, idx: u16) -> E {
        self.slice(idx, idx)
    }

    /// Concatenation with `self` in the upper bits.
    pub fn concat(&self, lo: impl IntoE) -> E {
        E::new(ExprNode::Concat { hi: self.clone(), lo: lo.into_e() })
    }

    /// Logical AND of two Boolean expressions (single-bit result).
    pub fn and_b(&self, rhs: impl IntoE) -> E {
        let rhs = rhs.into_e();
        E::new(ExprNode::Binary(BinOp::And, self.any(), rhs.any()))
    }

    /// Logical OR of two Boolean expressions (single-bit result).
    pub fn or_b(&self, rhs: impl IntoE) -> E {
        let rhs = rhs.into_e();
        E::new(ExprNode::Binary(BinOp::Or, self.any(), rhs.any()))
    }

    /// Logical NOT of a Boolean expression (single-bit result).
    pub fn not_b(&self) -> E {
        E::new(ExprNode::Binary(
            BinOp::Eq,
            self.any(),
            lit(0, 1),
        ))
    }

    /// Visits every *distinct* node in the expression DAG, pre-order.
    ///
    /// Shared subexpressions are visited once (expressions are
    /// reference-counted DAGs; visiting them as trees would take
    /// exponential time on deeply chained circuits).
    pub fn visit(&self, f: &mut impl FnMut(&E)) {
        let mut seen = std::collections::HashSet::new();
        self.visit_inner(f, &mut seen);
    }

    fn visit_inner(
        &self,
        f: &mut impl FnMut(&E),
        seen: &mut std::collections::HashSet<*const ExprNode>,
    ) {
        if !seen.insert(self.node() as *const ExprNode) {
            return;
        }
        f(self);
        match self.node() {
            ExprNode::Const { .. }
            | ExprNode::Input(_)
            | ExprNode::StreamFinished
            | ExprNode::Reg(_) => {}
            ExprNode::VecReg(_, idx) => idx.visit_inner(f, seen),
            ExprNode::BramRead(_, addr) => addr.visit_inner(f, seen),
            ExprNode::Unary(_, a) => a.visit_inner(f, seen),
            ExprNode::Binary(_, a, b) => {
                a.visit_inner(f, seen);
                b.visit_inner(f, seen);
            }
            ExprNode::Slice { arg, .. } => arg.visit_inner(f, seen),
            ExprNode::Concat { hi, lo } => {
                hi.visit_inner(f, seen);
                lo.visit_inner(f, seen);
            }
            ExprNode::Mux { cond, on_true, on_false } => {
                cond.visit_inner(f, seen);
                on_true.visit_inner(f, seen);
                on_false.visit_inner(f, seen);
            }
        }
    }

    /// Whether the tree contains any BRAM read.
    pub fn contains_bram_read(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e.node(), ExprNode::BramRead(..)) {
                found = true;
            }
        });
        found
    }
}

/// Conversion into an expression handle.
///
/// Implemented for [`E`], references to `E`, integer literals (which become
/// constants of their minimal width and are width-adapted by context), and
/// the state-element handles from
/// [`builder`](crate::builder).
pub trait IntoE {
    /// Converts `self` into an expression.
    fn into_e(self) -> E;
}

impl IntoE for E {
    fn into_e(self) -> E {
        self
    }
}

impl IntoE for &E {
    fn into_e(self) -> E {
        self.clone()
    }
}

impl IntoE for u64 {
    fn into_e(self) -> E {
        lit(self, min_width(self))
    }
}

impl IntoE for u32 {
    fn into_e(self) -> E {
        (self as u64).into_e()
    }
}

impl IntoE for i32 {
    fn into_e(self) -> E {
        assert!(self >= 0, "negative literals are not supported; use explicit-width two's complement via lit()");
        (self as u64).into_e()
    }
}

impl IntoE for bool {
    fn into_e(self) -> E {
        lit(self as u64, 1)
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:expr) => {
        impl<R: IntoE> std::ops::$trait<R> for E {
            type Output = E;
            fn $method(self, rhs: R) -> E {
                E::new(ExprNode::Binary($op, self, rhs.into_e()))
            }
        }
        impl<R: IntoE> std::ops::$trait<R> for &E {
            type Output = E;
            fn $method(self, rhs: R) -> E {
                E::new(ExprNode::Binary($op, self.clone(), rhs.into_e()))
            }
        }
    };
}

impl_binop!(Add, add, BinOp::Add);
impl_binop!(Sub, sub, BinOp::Sub);
impl_binop!(Mul, mul, BinOp::Mul);
impl_binop!(BitAnd, bitand, BinOp::And);
impl_binop!(BitOr, bitor, BinOp::Or);
impl_binop!(BitXor, bitxor, BinOp::Xor);
impl_binop!(Shl, shl, BinOp::Shl);
impl_binop!(Shr, shr, BinOp::Shr);

impl std::ops::Not for E {
    type Output = E;
    fn not(self) -> E {
        E::new(ExprNode::Unary(UnaryOp::Not, self))
    }
}

impl std::ops::Not for &E {
    type Output = E;
    fn not(self) -> E {
        E::new(ExprNode::Unary(UnaryOp::Not, self.clone()))
    }
}

/// Masks `value` to `width` bits.
#[inline]
pub fn mask(value: u64, width: Width) -> u64 {
    if width >= 64 {
        value
    } else {
        value & ((1u64 << width) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_widths() {
        assert_eq!(lit(0, 1).width(), 1);
        assert_eq!(lit(255, 8).width(), 8);
        assert_eq!(min_width(0), 1);
        assert_eq!(min_width(1), 1);
        assert_eq!(min_width(2), 2);
        assert_eq!(min_width(255), 8);
        assert_eq!(min_width(256), 9);
        assert_eq!(min_width(u64::MAX), 64);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn literal_overflow_panics() {
        lit(256, 8);
    }

    #[test]
    fn binop_width_rules() {
        let a = lit(1, 8);
        let b = lit(1, 16);
        assert_eq!((a.clone() + b.clone()).width(), 16);
        assert_eq!((a.clone() & b.clone()).width(), 16);
        assert_eq!(a.eq_e(b.clone()).width(), 1);
        assert_eq!((a.clone() << 2u64).width(), 8);
        assert_eq!(a.concat(b).width(), 24);
    }

    #[test]
    fn slice_and_bit() {
        let a = lit(0b1010, 4);
        assert_eq!(a.slice(3, 1).width(), 3);
        assert_eq!(a.bit(0).width(), 1);
    }

    #[test]
    fn mux_width_is_max_of_arms() {
        let c = lit(1, 1);
        let m = c.mux(lit(1, 4), lit(1, 9));
        assert_eq!(m.width(), 9);
    }

    #[test]
    fn mask_behaviour() {
        assert_eq!(mask(0x1ff, 8), 0xff);
        assert_eq!(mask(u64::MAX, 64), u64::MAX);
        assert_eq!(mask(5, 3), 5);
    }

    #[test]
    fn contains_bram_read_detects_nested() {
        let plain = lit(1, 4) + lit(2, 4);
        assert!(!plain.contains_bram_read());
    }

    #[test]
    fn visit_covers_all_children() {
        let e = lit(1, 4).mux(lit(2, 4) + lit(3, 4), lit(0, 4));
        let mut n = 0;
        e.visit(&mut |_| n += 1);
        // mux, cond, add, 2, 3, 0
        assert_eq!(n, 6);
    }
}
