//! Identifier and width types shared across the Fleet language crates.

use std::fmt;

/// Bit width of a value; always in `1..=64`.
pub type Width = u16;

/// Identifier of a scalar register inside a [`UnitSpec`](crate::UnitSpec).
///
/// Ids carry the register's width so expression widths can be computed
/// without a symbol-table lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegId {
    index: u32,
    width: Width,
}

impl RegId {
    pub(crate) fn new(index: u32, width: Width) -> RegId {
        RegId { index, width }
    }

    /// Position of this register in the unit's register table.
    pub fn index(self) -> usize {
        self.index as usize
    }

    /// Bit width of the register.
    pub fn width(self) -> Width {
        self.width
    }
}

impl fmt::Display for RegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.index)
    }
}

/// Identifier of a vector register (random-access register file).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VecRegId {
    index: u32,
    width: Width,
}

impl VecRegId {
    pub(crate) fn new(index: u32, width: Width) -> VecRegId {
        VecRegId { index, width }
    }

    /// Position of this vector register in the unit's table.
    pub fn index(self) -> usize {
        self.index as usize
    }

    /// Bit width of each element.
    pub fn width(self) -> Width {
        self.width
    }
}

impl fmt::Display for VecRegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.index)
    }
}

/// Identifier of a BRAM (block RAM with one read and one write port).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BramId {
    index: u32,
    data_width: Width,
    addr_width: Width,
}

impl BramId {
    pub(crate) fn new(index: u32, data_width: Width, addr_width: Width) -> BramId {
        BramId { index, data_width, addr_width }
    }

    /// Position of this BRAM in the unit's BRAM table.
    pub fn index(self) -> usize {
        self.index as usize
    }

    /// Bit width of each stored element.
    pub fn data_width(self) -> Width {
        self.data_width
    }

    /// Bit width of addresses (`log2` of the element count).
    pub fn addr_width(self) -> Width {
        self.addr_width
    }

    /// Number of elements.
    pub fn elements(self) -> usize {
        1usize << self.addr_width
    }
}

impl fmt::Display for BramId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.index)
    }
}

/// Returns `ceil(log2(n))`, with a minimum of 1.
pub fn clog2(n: usize) -> Width {
    debug_assert!(n >= 1);
    let mut w = 0u16;
    while (1usize << w) < n {
        w += 1;
    }
    w.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clog2_values() {
        assert_eq!(clog2(1), 1);
        assert_eq!(clog2(2), 1);
        assert_eq!(clog2(3), 2);
        assert_eq!(clog2(4), 2);
        assert_eq!(clog2(256), 8);
        assert_eq!(clog2(257), 9);
    }

    #[test]
    fn ids_carry_widths() {
        let r = RegId::new(3, 7);
        assert_eq!(r.index(), 3);
        assert_eq!(r.width(), 7);
        let b = BramId::new(0, 8, 8);
        assert_eq!(b.elements(), 256);
    }
}
