//! Cross-checks full RTL netlist simulation against the fast executor and
//! the software simulator — the paper's §6 testing infrastructure.

use fleet_compiler::{compile, NetDriver, PuExec, PuIn};
use fleet_isim::Interpreter;
use fleet_lang::{lit, UnitBuilder, UnitSpec};

fn histogram_spec() -> UnitSpec {
    let mut u = UnitBuilder::new("BlockFrequencies", 8, 8);
    let item_counter = u.reg("itemCounter", 7, 0);
    let frequencies = u.bram("frequencies", 256, 8);
    let idx = u.reg("frequenciesIdx", 9, 0);
    let input = u.input();
    u.if_(item_counter.eq_e(100u64), |u| {
        u.while_(idx.lt_e(256u64), |u| {
            u.emit(frequencies.read(idx));
            u.write(frequencies, idx, lit(0, 8));
            u.set(idx, idx + 1u64);
        });
        u.set(idx, lit(0, 9));
    });
    u.write(frequencies, input.clone(), frequencies.read(input) + 1u64);
    u.set(
        item_counter,
        item_counter.eq_e(100u64).mux(lit(1, 7), item_counter + 1u64),
    );
    u.build().unwrap()
}

/// Drives netlist and executor with identical stimulus (including stalls
/// and starvation from a deterministic PRNG) and asserts cycle-exact
/// equality of all output pins.
fn lockstep_compare(spec: &UnitSpec, tokens: &[u64], seed: u64, max_cycles: u64) -> Vec<u64> {
    let netlist = compile(spec).expect("compiles");
    let mut rtl = NetDriver::new(netlist);
    let mut fast = PuExec::new(spec);

    let mut rng = seed | 1;
    let mut next_rand = move || {
        // xorshift64
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };

    let mut pos = 0usize;
    let mut out = Vec::new();
    for cycle in 0..max_cycles {
        let starve = next_rand() % 4 == 0;
        let stall = next_rand() % 4 == 0;
        let have = pos < tokens.len() && !starve;
        let pins = PuIn {
            input_token: if have { tokens[pos] } else { 0 },
            input_valid: have,
            input_finished: pos >= tokens.len(),
            output_ready: !stall,
        };
        let ro = rtl.comb(&pins);
        let fo = fast.comb(&pins);
        assert_eq!(ro, fo, "pin mismatch at cycle {cycle} (seed {seed})");
        rtl.clock();
        fast.clock(&pins);
        if ro.output_valid && pins.output_ready {
            out.push(ro.output_token);
        }
        if ro.input_ready && pins.input_valid {
            pos += 1;
        }
        if ro.output_finished {
            return out;
        }
    }
    panic!("did not finish within {max_cycles} cycles");
}

#[test]
fn histogram_netlist_matches_executor_and_interpreter() {
    let spec = histogram_spec();
    let tokens: Vec<u64> = (0..250).map(|x| (x * 31 + 7) % 256).collect();
    let golden = Interpreter::run_tokens(&spec, &tokens).unwrap();
    for seed in [1u64, 42, 12345] {
        let out = lockstep_compare(&spec, &tokens, seed, 50_000);
        assert_eq!(out, golden.tokens, "stream mismatch for seed {seed}");
    }
}

#[test]
fn identity_netlist_matches() {
    let mut u = UnitBuilder::new("Identity", 8, 8);
    let inp = u.input();
    let nf = u.stream_finished().not_b();
    u.if_(nf, |u| u.emit(inp.clone()));
    let spec = u.build().unwrap();
    let tokens: Vec<u64> = (0..100).map(|x| x % 256).collect();
    let golden = Interpreter::run_tokens(&spec, &tokens).unwrap();
    let out = lockstep_compare(&spec, &tokens, 7, 10_000);
    assert_eq!(out, golden.tokens);
}

#[test]
fn vec_reg_unit_matches() {
    // Rolling 4-token XOR window over the stream using a vector register.
    let mut u = UnitBuilder::new("Window", 8, 8);
    let v = u.vec_reg("win", 4, 8, 0);
    let wi = u.reg("wi", 2, 0);
    let input = u.input();
    let nf = u.stream_finished().not_b();
    u.if_(nf, |u| {
        let x = v.read(lit(0, 2)) ^ v.read(lit(1, 2)) ^ v.read(lit(2, 2)) ^ v.read(lit(3, 2));
        u.emit(x ^ input.clone());
        u.set_vec(v, wi.e(), input.clone());
        u.set(wi, wi + 1u64);
    });
    let spec = u.build().unwrap();
    let tokens: Vec<u64> = (0..64).map(|x| (x * 37 + 11) % 256).collect();
    let golden = Interpreter::run_tokens(&spec, &tokens).unwrap();
    let out = lockstep_compare(&spec, &tokens, 99, 10_000);
    assert_eq!(out, golden.tokens);
}

#[test]
fn no_stall_throughput_is_one_vcycle_per_cycle() {
    // §4 guarantee: with no IO stalls, the compiled histogram unit runs
    // one virtual cycle per real cycle. The netlist cycle count must be
    // within a constant of the interpreter's virtual-cycle count.
    let spec = histogram_spec();
    let tokens: Vec<u64> = (0..300).map(|x| x % 256).collect();
    let golden = Interpreter::run_tokens(&spec, &tokens).unwrap();
    let netlist = compile(&spec).unwrap();
    let (out, cycles) = NetDriver::run_stream(netlist, &tokens, 100_000);
    assert_eq!(out, golden.tokens);
    assert!(
        cycles <= golden.vcycles + 4,
        "netlist took {cycles} cycles for {} virtual cycles",
        golden.vcycles
    );
}

#[test]
fn generated_verilog_has_expected_structure() {
    // Figure 4 structural landmarks in the emitted RTL.
    let spec = histogram_spec();
    let netlist = compile(&spec).unwrap();
    let v = fleet_rtl::verilog::emit(&netlist);
    assert!(v.contains("module BlockFrequencies ("));
    assert!(v.contains("input wire [7:0] input_token"));
    assert!(v.contains("output wire input_ready"));
    assert!(v.contains("reg [7:0] frequencies_mem [0:255];"));
    assert!(v.contains("frequencies_lastAddr"));
    assert!(v.contains("frequencies_lastData"));
    assert!(v.contains("output wire output_finished"));
}
