//! The netlist optimizer must preserve behaviour exactly: optimized and
//! unoptimized netlists are driven in lockstep over full streams.

use fleet_compiler::{compile, NetDriver};
use fleet_isim::Interpreter;
use fleet_lang::{lit, UnitBuilder, UnitSpec};
use fleet_rtl::{estimate, optimize};

fn histogram() -> UnitSpec {
    let mut u = UnitBuilder::new("BlockFrequencies", 8, 8);
    let item_counter = u.reg("itemCounter", 7, 0);
    let frequencies = u.bram("frequencies", 256, 8);
    let idx = u.reg("frequenciesIdx", 9, 0);
    let input = u.input();
    u.if_(item_counter.eq_e(100u64), |u| {
        u.while_(idx.lt_e(256u64), |u| {
            u.emit(frequencies.read(idx));
            u.write(frequencies, idx, lit(0, 8));
            u.set(idx, idx + 1u64);
        });
        u.set(idx, lit(0, 9));
    });
    u.write(frequencies, input.clone(), frequencies.read(input) + 1u64);
    u.set(
        item_counter,
        item_counter.eq_e(100u64).mux(lit(1, 7), item_counter + 1u64),
    );
    u.build().unwrap()
}

#[test]
fn optimizer_preserves_histogram_behaviour_and_shrinks() {
    let spec = histogram();
    let netlist = compile(&spec).unwrap();
    let (opt, stats) = optimize(&netlist);
    assert!(
        stats.nodes_after < stats.nodes_before,
        "optimizer should remove something: {stats:?}"
    );
    let tokens: Vec<u64> = (0..300).map(|x| (x * 13) % 256).collect();
    let golden = Interpreter::run_tokens(&spec, &tokens).unwrap();
    let (a, ca) = NetDriver::run_stream(netlist, &tokens, 100_000);
    let (b, cb) = NetDriver::run_stream(opt, &tokens, 100_000);
    assert_eq!(a, golden.tokens);
    assert_eq!(b, golden.tokens);
    assert_eq!(ca, cb, "optimization must not change timing");
}

#[test]
fn optimizer_preserves_all_app_netlists() {
    use fleet_apps::{App, AppKind};
    for kind in AppKind::all() {
        let app = App::new(kind);
        let spec = app.spec();
        let stream = match kind {
            AppKind::Bloom => app.gen_stream(2, 2048),
            AppKind::Tree => app.gen_stream(2, 10_000),
            _ => app.gen_stream(2, 1500),
        };
        let tokens =
            fleet_isim::bytes_to_tokens(&stream, spec.input_token_bits).expect("aligned");
        let golden = Interpreter::run_tokens(&spec, &tokens).expect("runs");

        let netlist = compile(&spec).expect("compiles");
        let before = estimate(&netlist);
        let (opt, stats) = optimize(&netlist);
        let after = estimate(&opt);
        assert!(
            after.luts <= before.luts,
            "{}: optimization should not grow area",
            app.name()
        );
        assert!(stats.nodes_after <= stats.nodes_before, "{}", app.name());

        let (out, _) = NetDriver::run_stream(opt, &tokens, golden.vcycles * 4 + 10_000);
        assert_eq!(out, golden.tokens, "{}: optimized netlist output", app.name());
    }
}
