//! Randomized differential testing: generate restriction-legal Fleet
//! programs and check that the software simulator, the fast executor,
//! and full RTL netlist simulation agree on every stream — broad
//! coverage of the §4 lowering beyond the hand-written applications.

use fleet_compiler::{compile, NetDriver, PuExec};
use fleet_isim::Interpreter;
use fleet_lang::{lit, Bram, E, Reg, UnitBuilder, UnitSpec};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Random expression over the declared registers and the input token.
fn rand_expr(rng: &mut Rng, regs: &[Reg], input: &E, depth: u32) -> E {
    if depth == 0 || rng.below(3) == 0 {
        return match rng.below(3) {
            0 => input.clone(),
            1 => {
                let r = regs[rng.below(regs.len() as u64) as usize];
                r.e()
            }
            _ => lit(rng.below(200), 8),
        };
    }
    let a = rand_expr(rng, regs, input, depth - 1);
    let b = rand_expr(rng, regs, input, depth - 1);
    match rng.below(8) {
        0 => a + b,
        1 => a - b,
        2 => a ^ b,
        3 => a & b,
        4 => a | b,
        5 => a.eq_e(b).mux(rand_expr(rng, regs, input, depth - 1), a),
        6 => (a << (rng.below(3))).slice(7, 0),
        _ => a.lt_e(b.clone()).mux(b, a),
    }
}

/// Generates a restriction-legal unit: a few 8-bit registers, one BRAM
/// (single read site, single write site), a guarded emit, and a bounded
/// while loop, all with random expressions.
fn rand_unit(seed: u64) -> UnitSpec {
    let mut rng = Rng(seed | 1);
    let mut u = UnitBuilder::new(format!("Rand{seed}"), 8, 8);
    let n_regs = 2 + rng.below(3) as usize;
    let regs: Vec<Reg> = (0..n_regs).map(|k| u.reg(format!("r{k}"), 8, 0)).collect();
    let bram: Option<Bram> = if rng.below(2) == 0 {
        Some(u.bram("m", 16, 8))
    } else {
        None
    };
    let cnt = u.reg("cnt", 4, 0);
    let input = u.input();

    // Optional bounded loop: runs `bound` extra virtual cycles per token.
    if rng.below(2) == 0 {
        let bound = 1 + rng.below(3);
        let e = rand_expr(&mut rng, &regs, &input, 2);
        u.while_(cnt.lt_e(bound), |u| {
            u.set(cnt, cnt + 1u64);
            u.set(regs[0], e);
        });
        u.set(cnt, lit(0, 4));
    }

    // Register updates under a random if/else.
    let cond = rand_expr(&mut rng, &regs, &input, 2).bit(0);
    let t_val = rand_expr(&mut rng, &regs, &input, 3);
    let f_val = rand_expr(&mut rng, &regs, &input, 3);
    let target = regs[rng.below(regs.len() as u64) as usize];
    u.if_else(
        cond.clone(),
        move |u| u.set(target, t_val),
        move |u| u.set(target, f_val),
    );

    // One BRAM read + one write per virtual cycle, if present.
    if let Some(b) = bram {
        let addr = rand_expr(&mut rng, &regs, &input, 1).slice(3, 0);
        let val = b.read(addr.clone()) ^ rand_expr(&mut rng, &regs, &input, 2);
        u.write(b, addr, val);
    }

    // Guarded emit (single site).
    let emit_cond = rand_expr(&mut rng, &regs, &input, 2).bit(0);
    let emit_val = rand_expr(&mut rng, &regs, &input, 3);
    u.if_(emit_cond, move |u| u.emit(emit_val));

    u.build().expect("generated unit is restriction-legal")
}

#[test]
fn random_programs_agree_across_backends() {
    for seed in 1..=60u64 {
        let spec = rand_unit(seed);
        let mut rng = Rng(seed.wrapping_mul(0x9E37_79B9) | 1);
        let tokens: Vec<u64> = (0..200).map(|_| rng.below(256)).collect();

        let isim = match Interpreter::run_tokens(&spec, &tokens) {
            Ok(o) => o,
            // The generator can produce dynamic conflicts only through
            // the single-emit rule it already satisfies; any simulator
            // error would be a generator bug.
            Err(e) => panic!("seed {seed}: simulator rejected generated unit: {e}"),
        };

        let (fast, fast_cycles) = PuExec::run_stream(&spec, &tokens);
        assert_eq!(fast, isim.tokens, "seed {seed}: executor vs simulator");
        assert!(
            fast_cycles <= isim.vcycles + 4,
            "seed {seed}: throughput guarantee broken"
        );

        let netlist = compile(&spec).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let (rtl, _) = NetDriver::run_stream(netlist, &tokens, isim.vcycles * 4 + 1000);
        assert_eq!(rtl, isim.tokens, "seed {seed}: netlist vs simulator");
    }
}

#[test]
fn random_programs_survive_stall_lockstep() {
    for seed in 61..=80u64 {
        let spec = rand_unit(seed);
        let mut rng = Rng(seed.wrapping_mul(0xDEAD_BEEF) | 1);
        let tokens: Vec<u64> = (0..120).map(|_| rng.below(256)).collect();
        let golden = Interpreter::run_tokens(&spec, &tokens).expect("legal unit");

        let mut rtl = NetDriver::new(compile(&spec).expect("compiles"));
        let mut fast = PuExec::new(&spec);
        let mut pos = 0usize;
        let mut out = Vec::new();
        let mut cycles = 0u64;
        loop {
            let starve = rng.below(3) == 0;
            let stall = rng.below(3) == 0;
            let have = pos < tokens.len() && !starve;
            let pins = fleet_compiler::PuIn {
                input_token: if have { tokens[pos] } else { 0 },
                input_valid: have,
                input_finished: pos >= tokens.len(),
                output_ready: !stall,
            };
            let ro = rtl.comb(&pins);
            let fo = fast.comb(&pins);
            assert_eq!(ro, fo, "seed {seed}: pin mismatch at cycle {cycles}");
            rtl.clock();
            fast.clock(&pins);
            if ro.output_valid && pins.output_ready {
                out.push(ro.output_token);
            }
            if ro.input_ready && pins.input_valid {
                pos += 1;
            }
            if ro.output_finished {
                break;
            }
            cycles += 1;
            assert!(cycles < 2_000_000, "seed {seed}: hang");
        }
        assert_eq!(out, golden.tokens, "seed {seed}: stalled output mismatch");
    }
}
