//! # fleet-compiler — Fleet-to-RTL compilation
//!
//! Compiles Fleet processing units (`fleet-lang`) into the guaranteed
//! two-stage virtual-cycle pipeline of §4 of the paper:
//!
//! * stage 1 performs all BRAM reads (addresses supplied one cycle early
//!   from next-state values),
//! * stage 2 performs register and BRAM writes,
//! * `(lastAddr, lastData)` forwarding registers hide the one-cycle BRAM
//!   latency across consecutive virtual cycles,
//! * ready-valid signaling, `while` stalls, and input/output stalls are
//!   generated automatically.
//!
//! Because the language restricts BRAM use (one read address, one write,
//! no dependent reads per virtual cycle), this pipeline *always* runs at
//! one virtual cycle per real cycle absent IO stalls — unlike HLS tools,
//! which must prove mutual exclusivity of accesses and otherwise inflate
//! the initiation interval (compared quantitatively in the `hls_ii`
//! experiment of `fleet-bench`).
//!
//! Two execution paths share this semantics:
//!
//! * [`compile`] → [`fleet_rtl::Netlist`] → [`NetDriver`] (full RTL
//!   simulation, Verilog emission, area estimation);
//! * [`PuExec`] — a fast executor used to simulate hundreds of units in
//!   `fleet-system`, cross-checked against the netlist.
//!
//! ## Example
//!
//! ```
//! use fleet_lang::UnitBuilder;
//! use fleet_compiler::{compile, NetDriver, PuExec};
//!
//! let mut u = UnitBuilder::new("Identity", 8, 8);
//! let inp = u.input();
//! let nf = u.stream_finished().not_b();
//! u.if_(nf, |u| u.emit(inp.clone()));
//! let spec = u.build()?;
//!
//! let netlist = compile(&spec)?;
//! let (rtl_out, _) = NetDriver::run_stream(netlist, &[9, 8, 7], 1000);
//! let (fast_out, _) = PuExec::run_stream(&spec, &[9, 8, 7]);
//! assert_eq!(rtl_out, vec![9, 8, 7]);
//! assert_eq!(rtl_out, fast_out);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod exec;
pub mod harness;
pub mod lower;

pub use error::CompileError;
pub use exec::{CompiledUnit, PuExec, PuExecBatch, PuIn, PuOut, Quiescence};
pub use harness::NetDriver;
pub use lower::compile;
