//! Test harness that drives a compiled netlist through the §4 interface.
//!
//! [`NetDriver`] adapts [`NetSim`] to the same [`PuIn`]/[`PuOut`] cycle
//! API as [`PuExec`](crate::PuExec), so the cross-check infrastructure
//! (§6 of the paper) can drive full RTL simulation and the fast executor
//! with identical stimulus and compare them cycle by cycle.

use fleet_rtl::{NetSim, Netlist};

use crate::exec::{PuIn, PuOut};

/// Cycle-level driver for a compiled processing-unit netlist.
#[derive(Debug, Clone)]
pub struct NetDriver {
    sim: NetSim,
}

impl NetDriver {
    /// Wraps a compiled netlist.
    ///
    /// # Panics
    ///
    /// Panics if the netlist is incomplete (see [`NetSim::new`]).
    pub fn new(netlist: Netlist) -> NetDriver {
        NetDriver { sim: NetSim::new(netlist) }
    }

    /// Evaluates combinational outputs for this cycle.
    pub fn comb(&mut self, pins: &PuIn) -> PuOut {
        self.sim.set_input("input_token", pins.input_token);
        self.sim.set_input("input_valid", pins.input_valid as u64);
        self.sim.set_input("input_finished", pins.input_finished as u64);
        self.sim.set_input("output_ready", pins.output_ready as u64);
        self.sim.comb();
        PuOut {
            input_ready: self.sim.output("input_ready") != 0,
            output_token: self.sim.output("output_token"),
            output_valid: self.sim.output("output_valid") != 0,
            output_finished: self.sim.output("output_finished") != 0,
        }
    }

    /// Advances the clock (inputs must match the preceding [`comb`]).
    ///
    /// [`comb`]: NetDriver::comb
    pub fn clock(&mut self) {
        self.sim.clock();
    }

    /// Convenience: `comb` then `clock`.
    pub fn tick(&mut self, pins: &PuIn) -> PuOut {
        let out = self.comb(pins);
        self.clock();
        out
    }

    /// Underlying netlist simulator (inspection).
    pub fn sim(&self) -> &NetSim {
        &self.sim
    }

    /// Drives the netlist over a whole token stream with no stalls.
    ///
    /// Returns emitted tokens and cycles elapsed. Panics after
    /// `max_cycles` as a hang guard.
    pub fn run_stream(netlist: Netlist, tokens: &[u64], max_cycles: u64) -> (Vec<u64>, u64) {
        let mut d = NetDriver::new(netlist);
        let mut out = Vec::new();
        let mut pos = 0usize;
        let mut cycles = 0u64;
        loop {
            let pins = PuIn {
                input_token: if pos < tokens.len() { tokens[pos] } else { 0 },
                input_valid: pos < tokens.len(),
                input_finished: pos >= tokens.len(),
                output_ready: true,
            };
            let o = d.tick(&pins);
            cycles += 1;
            if o.output_valid {
                out.push(o.output_token);
            }
            if o.input_ready && pins.input_valid {
                pos += 1;
            }
            if o.output_finished {
                break;
            }
            assert!(cycles < max_cycles, "netlist run did not terminate");
        }
        (out, cycles)
    }
}
