//! `PuExec`: a fast, cycle-exact executor for compiled processing units.
//!
//! Full-system simulation replicates a unit hundreds of times; evaluating
//! every netlist node per copy per cycle would dominate run time, so this
//! executor interprets the *program* once per virtual cycle while
//! reproducing the exact external behaviour of the netlist produced by
//! [`compile`](crate::compile): the same ready-valid handshakes on the
//! same cycles, the same priority semantics for multiple writes/emits,
//! and the same `stream_finished` cleanup execution. Equivalence is
//! enforced by the cross-check integration tests (the paper's §6
//! infrastructure).
//!
//! The split [`PuExec::comb`] / [`PuExec::clock`] API mirrors a clocked
//! circuit: `comb` computes outputs from pre-edge state, `clock` commits.
//! Handshake inputs must be computed from the *caller's* pre-edge state
//! (registered handshakes), which is how the memory controller operates.

use std::sync::Arc;

use fleet_isim::{PackedProg, PendingWrites, Slot, SsaOp, SsaProg, UnitState};
use fleet_lang::{mask, UnitSpec};
use fleet_trace::{CycleClass, PuCycleCounters};

/// Input port values for one cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PuIn {
    /// Current input token (must be 0 when `input_valid` is false).
    pub input_token: u64,
    /// Token valid.
    pub input_valid: bool,
    /// Asserted from the cycle after the last token handshake, forever.
    pub input_finished: bool,
    /// Downstream ready to accept an output token.
    pub output_ready: bool,
}

/// Output port values for one cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PuOut {
    /// Unit ready to accept a token this cycle.
    pub input_ready: bool,
    /// Emitted token (0 when `output_valid` is false).
    pub output_token: u64,
    /// Token emission valid.
    pub output_valid: bool,
    /// Asserted once processing is fully complete.
    pub output_finished: bool,
}

/// One virtual cycle's evaluation, cached across stall cycles.
#[derive(Debug, Clone)]
struct VcycleEval {
    loop_active: bool,
    emit: Option<u64>,
    pending: PendingWrites,
}

/// What a unit is provably waiting on after a clock edge.
///
/// Reported by [`PuExec::quiescence`] so the channel engine can skip
/// re-evaluating a unit whose pins cannot produce a different outcome
/// until the named external condition changes. The engine still
/// accounts every skipped cycle exactly (bulk increments on wake-up).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quiescence {
    /// Not quiescent: the unit makes progress every cycle and must be
    /// evaluated.
    None,
    /// Idle with no pending work: nothing changes until `input_valid`
    /// or `input_finished` is asserted.
    UntilInput,
    /// A pending emission is back-pressured: nothing changes until
    /// `output_ready` is asserted.
    UntilOutput,
}

/// A unit program compiled and validated once, shareable across
/// hundreds of replicas.
///
/// [`PuExec::new`] revalidates the spec and rebuilds the SSA program on
/// every call; full-system simulation replicates the same unit once per
/// stream, so compile once into a `CompiledUnit` and stamp out replicas
/// with [`PuExec::from_compiled`] (or [`CompiledUnit::replicate`]) —
/// the program and spec are behind `Arc`s, so a replica costs only the
/// mutable state.
#[derive(Debug, Clone)]
pub struct CompiledUnit {
    spec: Arc<UnitSpec>,
    /// Seed-faithful reference program: every expression node swept
    /// every virtual cycle.
    ssa: Arc<SsaProg>,
    /// Optimized program (constant folding, guard pre-combining, dead
    /// node elimination); computes identical values with a much smaller
    /// per-cycle sweep. The default evaluation path.
    opt: Arc<SsaProg>,
    /// The optimized program's node sweep re-encoded as flat pre-masked
    /// instructions ([`PackedProg`]); shares `opt`'s slot numbering.
    packed: Arc<PackedProg>,
    reset: UnitState,
    /// Whether every value that can ever enter a lane-batched
    /// evaluation plane for this unit fits in 32 bits, making the
    /// narrow ([`u32`]) plane bit-exact (see [`CompiledUnit::from_arc`]
    /// for the proof obligations).
    plane32: bool,
}

impl CompiledUnit {
    /// Validates and compiles `spec` once.
    ///
    /// # Panics
    ///
    /// Panics if the unit fails validation; validate with
    /// [`fleet_lang::validate`] (or build via `UnitBuilder`) first.
    pub fn new(spec: &UnitSpec) -> CompiledUnit {
        CompiledUnit::from_arc(Arc::new(spec.clone()))
    }

    /// Like [`CompiledUnit::new`], but takes an already-shared spec
    /// without cloning it (the serving runtime holds `Arc<UnitSpec>`s).
    ///
    /// # Panics
    ///
    /// Panics if the unit fails validation.
    pub fn from_arc(spec: Arc<UnitSpec>) -> CompiledUnit {
        fleet_lang::validate(&spec).expect("CompiledUnit requires a validated unit");
        let ssa = Arc::new(SsaProg::build(&spec));
        let opt = Arc::new(ssa.optimized(&spec));
        let packed = Arc::new(PackedProg::new(&opt));
        let reset = UnitState::reset(&spec);
        // Narrow-plane admissibility. Combined with
        // [`PackedProg::fits_u32`] (no instruction can *produce* a
        // value above 32 bits), these checks close the loop on every
        // other value source: input tokens (token width), committed
        // state (write widths and reset values), and the seeded
        // constant rows. Under them the u32 plane sweep is
        // bit-identical to the u64 one for any reachable state.
        let plane32 = packed.fits_u32()
            && spec.input_token_bits <= 32
            && spec.regs.iter().all(|r| r.width <= 32 && r.init <= u64::from(u32::MAX))
            && spec.vec_regs.iter().all(|v| v.width <= 32 && v.init <= u64::from(u32::MAX))
            && spec.brams.iter().all(|b| b.data_width <= 32)
            && opt.seed_vals().iter().all(|&v| v <= u64::from(u32::MAX))
            && opt.ops.iter().all(|op| match &op.op {
                SsaOp::SetReg { width, .. } | SsaOp::SetVecReg { width, .. } => *width <= 32,
                SsaOp::BramWrite { dw, .. } => *dw <= 32,
                SsaOp::Emit { .. } => true,
            });
        CompiledUnit { spec, ssa, opt, packed, reset, plane32 }
    }

    /// The unit specification this program was compiled from.
    pub fn spec(&self) -> &UnitSpec {
        &self.spec
    }

    /// The shared spec handle.
    pub fn spec_arc(&self) -> &Arc<UnitSpec> {
        &self.spec
    }

    /// Stamps out one executor replica sharing this compiled program.
    pub fn replicate(&self) -> PuExec {
        PuExec::from_compiled(self)
    }
}

/// Fast executor with the compiled unit's cycle-level interface.
///
/// The program is compiled once into a linear SSA node vector
/// ([`SsaProg`]) and swept per virtual cycle — the same evaluation shape
/// as the netlist simulator, without per-node hashing.
#[derive(Debug, Clone)]
pub struct PuExec {
    /// Seed-faithful reference program (full per-cycle sweep).
    ssa: Arc<SsaProg>,
    /// Optimized program; the default evaluation path.
    opt: Arc<SsaProg>,
    /// Flat pre-masked encoding of `opt`'s node sweep — what the
    /// default path actually executes per virtual cycle.
    packed: Arc<PackedProg>,
    /// When set, virtual cycles evaluate through the reference program
    /// instead of the optimized one. Both are cycle-exact; the flag
    /// only selects the cost profile (see
    /// [`PuExec::set_reference_eval`]).
    reference: bool,
    vals: Vec<u64>,
    /// Recycled pending-write buffers (avoids a per-virtual-cycle
    /// allocation on the hot path).
    scratch: PendingWrites,
    state: UnitState,
    i: u64,
    v: bool,
    f: bool,
    cached: Option<VcycleEval>,
    cycles: u64,
    vcycles: u64,
    counters: PuCycleCounters,
    /// Inherited narrow-plane admissibility (see [`CompiledUnit`]).
    plane32: bool,
}

impl PuExec {
    /// Creates an executor with reset state.
    ///
    /// # Panics
    ///
    /// Panics if the unit fails validation; validate with
    /// [`fleet_lang::validate`] (or build via `UnitBuilder`) first.
    pub fn new(spec: &UnitSpec) -> PuExec {
        PuExec::from_compiled(&CompiledUnit::new(spec))
    }

    /// Creates an executor with reset state from an already-compiled
    /// program, sharing the SSA node vector instead of rebuilding it.
    ///
    /// Replicating a unit across hundreds of PUs this way skips the
    /// per-replica validation + compilation that dominated system setup.
    pub fn from_compiled(unit: &CompiledUnit) -> PuExec {
        PuExec {
            vals: unit.opt.seed_vals(),
            ssa: Arc::clone(&unit.ssa),
            opt: Arc::clone(&unit.opt),
            packed: Arc::clone(&unit.packed),
            reference: false,
            scratch: PendingWrites::default(),
            state: unit.reset.clone(),
            i: 0,
            v: false,
            f: false,
            cached: None,
            cycles: 0,
            vcycles: 0,
            counters: PuCycleCounters::default(),
            plane32: unit.plane32,
        }
    }

    /// Clock cycles elapsed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Virtual cycles completed.
    pub fn vcycles(&self) -> u64 {
        self.vcycles
    }

    /// Cycle classification from the unit's own perspective: busy
    /// (committed a virtual cycle), stalled on output, waiting for
    /// input, or drained. One class per [`PuExec::clock`], so
    /// `counters().total() == cycles()`.
    pub fn counters(&self) -> PuCycleCounters {
        self.counters
    }

    /// Unit state (testing/inspection).
    pub fn state(&self) -> &UnitState {
        &self.state
    }

    /// Selects the evaluation path: `true` sweeps the seed-faithful
    /// reference program, `false` (the default) the optimized one.
    ///
    /// Both compute identical virtual cycles — emissions, state writes,
    /// handshakes — so this only changes the simulator's *cost*, never
    /// its behaviour. The naive engine tick drives units through the
    /// reference path so throughput comparisons measure the real
    /// pre-optimization cost profile.
    pub fn set_reference_eval(&mut self, reference: bool) {
        if reference != self.reference {
            self.reference = reference;
            // The two programs have different slot layouts and baked
            // constants; restart from the right seed buffer.
            let prog = if reference { &self.ssa } else { &self.opt };
            self.vals.clear();
            self.vals.extend_from_slice(&prog.seed_vals());
        }
    }

    /// Whether virtual cycles currently evaluate through the reference
    /// program.
    pub fn reference_eval(&self) -> bool {
        self.reference
    }

    fn eval_vcycle(&mut self) -> &VcycleEval {
        if self.cached.is_none() {
            // The packed encoding shares `opt`'s slot numbering, so
            // `opt`'s loop conditions and ops read its buffer directly.
            let prog = if self.reference { &self.ssa } else { &self.opt };
            if self.reference {
                prog.eval(&self.state, self.i, self.f, &mut self.vals);
            } else {
                self.packed.eval(&self.state, self.i, self.f, &mut self.vals);
            }
            let loop_active = prog.any_loop(&self.vals);
            let vals = &self.vals;
            let mut pending = std::mem::take(&mut self.scratch);
            let emit =
                walk_ops(prog, &self.state, loop_active, |s| vals[s as usize], &mut pending);
            self.cached = Some(VcycleEval { loop_active, emit, pending });
        }
        self.cached.as_ref().expect("just filled")
    }

    /// Whether this unit is waiting for exactly the work a lane-batched
    /// sweep provides: a latched token (or cleanup execution) with no
    /// cached evaluation yet, on the optimized/packed path.
    ///
    /// Such a unit's next [`PuExec::comb`]/[`PuExec::clock`] would run
    /// the packed instruction sweep; pre-evaluating it through
    /// [`PuExecBatch`] and [`PuExec::adopt_lane_eval`] installs the
    /// identical cache, so batching is externally unobservable.
    #[inline]
    pub fn lane_pending(&self) -> bool {
        self.v && self.cached.is_none() && !self.reference
    }

    /// Installs this unit's virtual-cycle evaluation from lane `lane`
    /// of a swept [`PuExecBatch`], exactly as [`PuExec::comb`] would
    /// have computed it. The batch must have been swept with this unit
    /// enrolled at `lane` in the same engine cycle (no architectural
    /// state change in between).
    ///
    /// The walk already ran inside [`PuExecBatch::sweep`]; this only
    /// moves the lane's results into the unit's evaluation cache,
    /// trading the unit's (empty) scratch buffer into the batch so the
    /// pending-write allocations circulate instead of growing.
    #[inline]
    pub fn adopt_lane_eval(&mut self, batch: &mut PuExecBatch, lane: usize) {
        debug_assert!(self.lane_pending(), "adopting unit is not awaiting evaluation");
        debug_assert!(batch.matches(self), "batch swept a different program");
        debug_assert!(lane < batch.width, "lane {lane} out of batch width {}", batch.width);
        let pending = std::mem::replace(&mut batch.pending[lane], std::mem::take(&mut self.scratch));
        self.cached = Some(VcycleEval {
            loop_active: batch.loop_active[lane],
            emit: batch.emits[lane],
            pending,
        });
    }

    /// Combinational outputs for this cycle (no state change besides the
    /// internal evaluation cache).
    #[inline]
    pub fn comb(&mut self, pins: &PuIn) -> PuOut {
        if !self.v {
            return PuOut {
                input_ready: true,
                output_token: 0,
                output_valid: false,
                output_finished: !self.v && self.f,
            };
        }
        let out_ready = pins.output_ready;
        let ev = self.eval_vcycle();
        let output_valid = ev.emit.is_some();
        let while_done = !ev.loop_active;
        let handshake_ok = !output_valid || out_ready;
        PuOut {
            input_ready: while_done && handshake_ok,
            output_token: ev.emit.unwrap_or(0),
            output_valid,
            output_finished: false,
        }
    }

    /// Clock edge: commits the virtual cycle when it finishes and latches
    /// a new token / the finish flag when `input_ready`.
    #[inline]
    pub fn clock(&mut self, pins: &PuIn) {
        self.cycles += 1;
        if self.v {
            let (handshake_ok, while_done) = {
                let ev = self.eval_vcycle();
                (ev.emit.is_none() || pins.output_ready, !ev.loop_active)
            };
            let v_done = handshake_ok;
            self.counters.add(if handshake_ok {
                CycleClass::Busy
            } else {
                CycleClass::StallOut
            });
            if v_done {
                let ev = self.cached.take().expect("evaluated in this cycle");
                ev.pending.commit(&mut self.state);
                // Recycle the pending-write buffers for the next
                // virtual cycle.
                self.scratch = ev.pending;
                self.scratch.clear();
                self.vcycles += 1;
                if while_done {
                    // input_ready was asserted: accept next token or start
                    // the cleanup execution.
                    let new_v = pins.input_valid || (!self.f && pins.input_finished);
                    self.f = self.f || pins.input_finished;
                    self.i = if pins.input_valid { pins.input_token } else { 0 };
                    self.v = new_v;
                }
                // Loop continuing: state committed, next loop virtual
                // cycle re-evaluates (cache already cleared by take()).
            }
        } else {
            // Idle: input_ready is high.
            self.counters.add(if self.f {
                CycleClass::Drained
            } else {
                CycleClass::StallIn
            });
            let new_v = pins.input_valid || (!self.f && pins.input_finished);
            self.f = self.f || pins.input_finished;
            self.i = if pins.input_valid { pins.input_token } else { 0 };
            self.v = new_v;
            self.cached = None;
        }
    }

    /// Convenience: `comb` then `clock`, returning the outputs.
    pub fn tick(&mut self, pins: &PuIn) -> PuOut {
        let out = self.comb(pins);
        self.clock(pins);
        out
    }

    /// Whether the unit has fully finished (output side).
    pub fn finished(&self) -> bool {
        !self.v && self.f
    }

    /// What the unit is provably waiting on, judged from post-edge state.
    ///
    /// `UntilInput` means the unit is idle with nothing latched: every
    /// subsequent [`PuExec::tick`] with `!input_valid && !input_finished`
    /// is a pure `StallIn` cycle. `UntilOutput` means a fully-evaluated
    /// virtual cycle is blocked on an emission: every subsequent tick
    /// with `!output_ready` is a pure `StallOut` cycle holding
    /// `output_valid` with the same token. Either way the pins the unit
    /// drives are constant, so a simulator may skip re-evaluation and
    /// account the skipped span with [`PuExec::skip_cycles`].
    #[inline]
    pub fn quiescence(&self) -> Quiescence {
        if self.v {
            if self.cached.is_some() {
                // A cached evaluation survives `clock` only when its
                // emission was back-pressured (the StallOut path).
                Quiescence::UntilOutput
            } else {
                Quiescence::None
            }
        } else if self.f {
            // Finished: drained cycles, handled by the caller.
            Quiescence::None
        } else {
            Quiescence::UntilInput
        }
    }

    /// Accounts `n` skipped cycles in bulk, as if [`PuExec::clock`] had
    /// run `n` times under the quiescent condition reported by
    /// [`PuExec::quiescence`] (which must not be `None`).
    pub fn skip_cycles(&mut self, n: u64) {
        self.cycles += n;
        self.counters.add_n(
            if self.v { CycleClass::StallOut } else { CycleClass::StallIn },
            n,
        );
    }

    /// Drives the executor over a whole token stream with no stalls,
    /// returning the emitted tokens and total cycles. Used by tests and
    /// single-unit benchmarks.
    pub fn run_stream(spec: &UnitSpec, tokens: &[u64]) -> (Vec<u64>, u64) {
        let mut pu = PuExec::new(spec);
        let mut out = Vec::new();
        let mut pos = 0usize;
        let mut guard = 0u64;
        let limit = 1_000_000_000u64;
        while !pu.finished() {
            let pins = PuIn {
                input_token: if pos < tokens.len() { tokens[pos] } else { 0 },
                input_valid: pos < tokens.len(),
                input_finished: pos >= tokens.len(),
                output_ready: true,
            };
            let o = pu.tick(&pins);
            if o.output_valid {
                out.push(o.output_token);
            }
            if o.input_ready && pins.input_valid {
                pos += 1;
            }
            guard += 1;
            assert!(guard < limit, "run_stream did not terminate");
        }
        (out, pu.cycles())
    }
}

/// Walks the program's guarded operations for one virtual cycle,
/// reading evaluated slot values through `get`, filling `pending` with
/// the cycle's state writes and returning the emitted token (if any).
///
/// Shared by the per-unit path (reading the unit's own `vals` buffer)
/// and the lane-batched path (reading one lane's column of a
/// [`PuExecBatch`] plane), so both produce the same [`VcycleEval`] by
/// construction.
fn walk_ops(
    prog: &SsaProg,
    state: &UnitState,
    loop_active: bool,
    get: impl Fn(Slot) -> u64,
    pending: &mut PendingWrites,
) -> Option<u64> {
    let mut emit = None;
    for op in &prog.ops {
        if op.in_loop != loop_active || op.guards.iter().any(|&g| get(g) == 0) {
            continue;
        }
        match &op.op {
            SsaOp::SetReg { reg, width, val } => {
                // Priority: the first active assignment wins, like
                // the compiled priority mux.
                let r = *reg as usize;
                if !pending.regs.iter().any(|(idx, _)| *idx == r) {
                    pending.regs.push((r, mask(get(*val), *width)));
                }
            }
            SsaOp::SetVecReg { vr, width, idx, val } => {
                let v = *vr as usize;
                let elements = state.vec_regs[v].len();
                let i = get(*idx) as usize;
                if i >= elements {
                    // Out-of-range index selects no element, like
                    // the compiled per-element write decoders.
                    continue;
                }
                if !pending.vec_regs.iter().any(|(w, e, _)| *w == v && *e == i) {
                    pending.vec_regs.push((v, i, mask(get(*val), *width)));
                }
            }
            SsaOp::BramWrite { bram, aw, dw, addr, val } => {
                let b = *bram as usize;
                if !pending.brams.iter().any(|(idx, _, _)| *idx == b) {
                    pending.brams.push((b, mask(get(*addr), *aw), mask(get(*val), *dw)));
                }
            }
            SsaOp::Emit { val, width } => {
                if emit.is_none() {
                    emit = Some(mask(get(*val), *width));
                }
            }
        }
    }
    emit
}

/// A lane-major evaluation plane shared by up to `width` replicas of
/// one compiled program — the SIMD half of the simulator hot path.
///
/// All replicas of a [`CompiledUnit`] execute the *same*
/// [`PackedProg`]; a batch sweeps one instruction across every enrolled
/// lane before moving to the next ([`PackedProg::eval_lanes`]), turning
/// the per-unit interpreter dispatch into dense per-row arithmetic the
/// compiler vectorizes. Wedged/stalled/drained units are masked off by
/// never enrolling them ([`PuExec::lane_pending`] is the gate);
/// divergent guards cost nothing because each lane owns a full column
/// of the plane and the guarded-op walk stays per-lane
/// ([`PuExec::adopt_lane_eval`]).
///
/// The plane's constant rows (slots below the program's first written
/// slot) are seeded once at construction and never rewritten, so a
/// batch is reusable across engine cycles and lane-group compositions.
#[derive(Debug)]
pub struct PuExecBatch {
    opt: Arc<SsaProg>,
    packed: Arc<PackedProg>,
    width: usize,
    /// Lane-major values: slot `s`, lane `l` at `plane[s * width + l]`.
    plane: LanePlane,
    /// Reusable per-sweep gather buffers.
    inputs: Vec<u64>,
    finished: Vec<bool>,
    /// Per-lane walk results of the last sweep, consumed by
    /// [`PuExec::adopt_lane_eval`]. The pending-write buffers circulate
    /// between the batch and the adopting units' scratch so neither
    /// side reallocates in steady state.
    loop_active: Vec<bool>,
    emits: Vec<Option<u64>>,
    pending: Vec<PendingWrites>,
    /// Distinct guard slots referenced across `opt.ops`; each sweep
    /// packs every distinct guard row into a lane bitmask exactly once,
    /// however many ops it gates.
    guard_slots: Vec<Slot>,
    /// Per-op guard lists as indices into `guard_slots` (parallel to
    /// `opt.ops`).
    op_guards: Vec<Vec<u32>>,
    /// Per-sweep packed lane bitmasks, parallel to `guard_slots`.
    guard_masks: Vec<u64>,
    /// Lanes that already wrote each register / BRAM this sweep — the
    /// first-write-wins dedup transposed into one mask AND per op, so
    /// repeat writers skip already-written lanes without visiting them.
    reg_lanes: Vec<u64>,
    bram_lanes: Vec<u64>,
}

/// Backing storage for a batch's lane-major value plane.
///
/// The narrow form is selected per compiled unit when
/// [`CompiledUnit`]'s admissibility proof holds: it halves the plane's
/// cache footprint (a 512-PU JSON channel's 32-lane plane drops from
/// ~45 KB to ~22 KB, inside L1) and doubles the lanes per SIMD
/// register in both the instruction sweep and the guarded-op walk.
#[derive(Debug)]
enum LanePlane {
    /// Full-width `u64` columns — always valid.
    Wide(Vec<u64>),
    /// Narrow `u32` columns — bit-exact only under the unit's
    /// narrow-plane proof.
    Narrow(Vec<u32>),
}

/// Column element of a lane-major evaluation plane: lets the
/// guarded-op walk run over either plane width from one body.
trait LaneVal: Copy {
    /// The value as the architectural `u64` it represents.
    fn widen(self) -> u64;
}

impl LaneVal for u64 {
    #[inline]
    fn widen(self) -> u64 {
        self
    }
}

impl LaneVal for u32 {
    #[inline]
    fn widen(self) -> u64 {
        u64::from(self)
    }
}

/// Caller-owned scratch and precomputed tables for
/// [`walk_lane_rows`], all recycled across sweeps (see the matching
/// [`PuExecBatch`] fields for the invariants).
struct WalkTables<'a> {
    guard_slots: &'a [Slot],
    op_guards: &'a [Vec<u32>],
    guard_masks: &'a mut [u64],
    reg_lanes: &'a mut [u64],
    bram_lanes: &'a mut [u64],
}

/// The guarded-op walk of [`PuExecBatch::sweep`], op-major over the
/// swept plane's rows: for each lane the produced results are
/// identical to running [`walk_ops`] on that lane's column (same op
/// order, same first-write-wins merges, same out-of-range vector-write
/// skip), restructured around lane bitmasks. Each distinct guard row
/// is packed into a 64-bit lane mask once per sweep; an op's firing
/// set is then the AND of its guard masks with the loop-phase mask,
/// and first-write-wins dedup is a transposed per-target
/// "already-written lanes" mask — so ops that fire nowhere, lanes an
/// op skips, and writes that lost the first-write race all cost no
/// per-lane work at all.
#[allow(clippy::too_many_arguments)]
fn walk_lane_rows<T: LaneVal>(
    opt: &SsaProg,
    plane: &[T],
    width: usize,
    n: usize,
    states: &[&UnitState],
    loop_active: &mut [bool],
    emits: &mut [Option<u64>],
    pending: &mut [PendingWrites],
    tables: WalkTables<'_>,
) {
    assert!(n <= 64, "lane group exceeds the walk's 64-lane bitmask");
    let WalkTables { guard_slots, op_guards, guard_masks, reg_lanes, bram_lanes } = tables;
    let row = |s: Slot| &plane[s as usize * width..s as usize * width + n];
    let full: u64 = if n >= 64 { u64::MAX } else { (1u64 << n) - 1 };

    loop_active[..n].fill(false);
    for &s in &opt.loop_conds {
        for (la, &v) in loop_active.iter_mut().zip(row(s)) {
            *la |= v.widen() != 0;
        }
    }
    let mut loop_mask = 0u64;
    for (l, &la) in loop_active[..n].iter().enumerate() {
        loop_mask |= u64::from(la) << l;
    }
    for l in 0..n {
        pending[l].clear();
        emits[l] = None;
    }
    for (gi, &g) in guard_slots.iter().enumerate() {
        let rg = row(g);
        let mut gm = 0u64;
        for (l, &v) in rg.iter().enumerate() {
            gm |= u64::from(v.widen() != 0) << l;
        }
        guard_masks[gi] = gm;
    }
    reg_lanes.fill(0);
    bram_lanes.fill(0);
    let mut emitted = 0u64;
    for (op, gidx) in opt.ops.iter().zip(op_guards) {
        let mut fm = if op.in_loop { loop_mask } else { !loop_mask & full };
        for &gi in gidx {
            fm &= guard_masks[gi as usize];
        }
        if fm == 0 {
            continue;
        }
        match &op.op {
            SsaOp::SetReg { reg, width: w, val } => {
                let r = *reg as usize;
                let wm = mask(u64::MAX, *w);
                let vrow = row(*val);
                let mut it = fm & !reg_lanes[r];
                reg_lanes[r] |= it;
                while it != 0 {
                    let l = it.trailing_zeros() as usize;
                    it &= it - 1;
                    pending[l].regs.push((r, vrow[l].widen() & wm));
                }
            }
            SsaOp::SetVecReg { vr, width: w, idx, val } => {
                let v = *vr as usize;
                let wm = mask(u64::MAX, *w);
                let irow = row(*idx);
                let vrow = row(*val);
                let mut it = fm;
                while it != 0 {
                    let l = it.trailing_zeros() as usize;
                    it &= it - 1;
                    let elements = states[l].vec_regs[v].len();
                    let i = irow[l].widen() as usize;
                    if i >= elements {
                        // Out-of-range index selects no element,
                        // like the compiled write decoders.
                        continue;
                    }
                    let p = &mut pending[l];
                    if !p.vec_regs.iter().any(|(w2, e, _)| *w2 == v && *e == i) {
                        p.vec_regs.push((v, i, vrow[l].widen() & wm));
                    }
                }
            }
            SsaOp::BramWrite { bram, aw, dw, addr, val } => {
                let b = *bram as usize;
                let am = mask(u64::MAX, *aw);
                let wm = mask(u64::MAX, *dw);
                let arow = row(*addr);
                let vrow = row(*val);
                let mut it = fm & !bram_lanes[b];
                bram_lanes[b] |= it;
                while it != 0 {
                    let l = it.trailing_zeros() as usize;
                    it &= it - 1;
                    pending[l].brams.push((b, arow[l].widen() & am, vrow[l].widen() & wm));
                }
            }
            SsaOp::Emit { val, width: w } => {
                let wm = mask(u64::MAX, *w);
                let vrow = row(*val);
                let mut it = fm & !emitted;
                emitted |= it;
                while it != 0 {
                    let l = it.trailing_zeros() as usize;
                    it &= it - 1;
                    emits[l] = Some(vrow[l].widen() & wm);
                }
            }
        }
    }
}

impl PuExecBatch {
    /// Builds a `width`-lane plane for `pu`'s compiled program (widths
    /// below 1 are clamped to 1). Any replica of the same
    /// [`CompiledUnit`] can occupy any lane.
    pub fn for_unit(pu: &PuExec, width: usize) -> PuExecBatch {
        let width = width.clamp(1, 64);
        let slots = pu.opt.slots();
        let plane = if pu.plane32 {
            let mut p = vec![0u32; slots * width];
            for (s, &v) in pu.opt.seed_vals().iter().enumerate() {
                p[s * width..(s + 1) * width].fill(v as u32);
            }
            LanePlane::Narrow(p)
        } else {
            let mut p = vec![0u64; slots * width];
            for (s, &v) in pu.opt.seed_vals().iter().enumerate() {
                p[s * width..(s + 1) * width].fill(v);
            }
            LanePlane::Wide(p)
        };
        let mut guard_slots: Vec<Slot> = Vec::new();
        let op_guards: Vec<Vec<u32>> = pu
            .opt
            .ops
            .iter()
            .map(|op| {
                op.guards
                    .iter()
                    .map(|&g| match guard_slots.iter().position(|&s| s == g) {
                        Some(i) => i as u32,
                        None => {
                            guard_slots.push(g);
                            (guard_slots.len() - 1) as u32
                        }
                    })
                    .collect()
            })
            .collect();
        let n_regs = pu
            .opt
            .ops
            .iter()
            .filter_map(|op| match &op.op {
                SsaOp::SetReg { reg, .. } => Some(*reg as usize + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let n_brams = pu
            .opt
            .ops
            .iter()
            .filter_map(|op| match &op.op {
                SsaOp::BramWrite { bram, .. } => Some(*bram as usize + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let guard_masks = vec![0u64; guard_slots.len()];
        PuExecBatch {
            opt: Arc::clone(&pu.opt),
            packed: Arc::clone(&pu.packed),
            width,
            plane,
            inputs: Vec::with_capacity(width),
            finished: Vec::with_capacity(width),
            loop_active: vec![false; width],
            emits: vec![None; width],
            pending: (0..width).map(|_| PendingWrites::default()).collect(),
            guard_slots,
            op_guards,
            guard_masks,
            reg_lanes: vec![0; n_regs],
            bram_lanes: vec![0; n_brams],
        }
    }

    /// Number of lanes in the plane.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Whether `pu` executes the exact program this plane was built
    /// for (same `Arc`, optimized path selected).
    pub fn matches(&self, pu: &PuExec) -> bool {
        Arc::ptr_eq(&self.packed, &pu.packed) && !pu.reference
    }

    /// Sweeps one virtual-cycle evaluation for every unit in `lanes`
    /// (unit `l` occupies lane `l`; at most [`PuExecBatch::width`]
    /// units). Each unit must satisfy [`PuExec::lane_pending`] and
    /// [`PuExecBatch::matches`]. Follow with
    /// [`PuExec::adopt_lane_eval`] per unit to install the results.
    ///
    /// The sweep covers the whole virtual cycle: the SIMD instruction
    /// sweep ([`PackedProg::eval_lanes`]) *and* the guarded-op walk,
    /// run op-major so every plane access is a contiguous row instead
    /// of the per-lane column walk's strided reads — the results are
    /// identical to running [`walk_ops`] per lane by construction
    /// (same op order, same first-write-wins merges, per lane).
    pub fn sweep(&mut self, lanes: &[&PuExec]) {
        let n = lanes.len();
        assert!(n <= self.width, "lane group exceeds batch width");
        assert!(!lanes.is_empty(), "empty lane group");
        self.inputs.clear();
        self.finished.clear();
        // Stack-resident gather: a group never exceeds 64 lanes (the
        // walk's firing-lane bitmask), so a fixed array avoids a heap
        // allocation on every sweep of the hot loop.
        let mut states: [&UnitState; 64] = [&lanes[0].state; 64];
        for (slot, pu) in states.iter_mut().zip(lanes) {
            debug_assert!(pu.lane_pending(), "swept unit is not awaiting evaluation");
            debug_assert!(self.matches(pu), "swept unit runs a different program");
            *slot = &pu.state;
            self.inputs.push(pu.i);
            self.finished.push(pu.f);
        }
        let states = &states[..n];
        let Self {
            opt,
            packed,
            width,
            plane,
            inputs,
            finished,
            loop_active,
            emits,
            pending,
            guard_slots,
            op_guards,
            guard_masks,
            reg_lanes,
            bram_lanes,
        } = self;
        let width = *width;
        match plane {
            LanePlane::Wide(p) => {
                packed.eval_lanes(states, inputs, finished, width, p);
                walk_lane_rows(
                    opt,
                    p,
                    width,
                    n,
                    states,
                    loop_active,
                    emits,
                    pending,
                    WalkTables { guard_slots, op_guards, guard_masks, reg_lanes, bram_lanes },
                );
            }
            LanePlane::Narrow(p) => {
                packed.eval_lanes32(states, inputs, finished, width, p);
                walk_lane_rows(
                    opt,
                    p,
                    width,
                    n,
                    states,
                    loop_active,
                    emits,
                    pending,
                    WalkTables { guard_slots, op_guards, guard_masks, reg_lanes, bram_lanes },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleet_isim::Interpreter;
    use fleet_lang::{lit, UnitBuilder};

    fn identity_spec() -> UnitSpec {
        let mut u = UnitBuilder::new("Identity", 8, 8);
        let inp = u.input();
        let nf = u.stream_finished().not_b();
        u.if_(nf, |u| u.emit(inp.clone()));
        u.build().unwrap()
    }

    #[test]
    fn identity_passes_tokens_through() {
        let spec = identity_spec();
        let (out, cycles) = PuExec::run_stream(&spec, &[5, 6, 7]);
        assert_eq!(out, vec![5, 6, 7]);
        // 1 cycle latency to accept, 3 virtual cycles, 1 cleanup cycle,
        // plus idle detection.
        assert!((5..=8).contains(&cycles), "cycles = {cycles}");
    }

    #[test]
    fn sustains_one_token_per_cycle() {
        // With no stalls, an identity unit must consume one token per
        // cycle in steady state (the §4 throughput guarantee).
        let spec = identity_spec();
        let n = 1000;
        let tokens: Vec<u64> = (0..n).map(|x| x % 256).collect();
        let (out, cycles) = PuExec::run_stream(&spec, &tokens);
        assert_eq!(out.len(), n as usize);
        assert!(
            cycles <= n + 5,
            "throughput below 1 token/cycle: {cycles} cycles for {n} tokens"
        );
    }

    #[test]
    fn output_stall_preserves_tokens() {
        // Accept output only every 3rd cycle; the stream must still come
        // out complete and in order.
        let spec = identity_spec();
        let tokens: Vec<u64> = (0..50).map(|x| (x * 7 % 256) as u64).collect();
        let mut pu = PuExec::new(&spec);
        let mut out = Vec::new();
        let mut pos = 0;
        let mut cyc = 0u64;
        while !pu.finished() {
            let ready = cyc.is_multiple_of(3);
            let pins = PuIn {
                input_token: if pos < tokens.len() { tokens[pos] } else { 0 },
                input_valid: pos < tokens.len(),
                input_finished: pos >= tokens.len(),
                output_ready: ready,
            };
            let o = pu.tick(&pins);
            if o.output_valid && ready {
                out.push(o.output_token);
            }
            if o.input_ready && pins.input_valid {
                pos += 1;
            }
            cyc += 1;
            assert!(cyc < 10_000);
        }
        assert_eq!(out, tokens);
    }

    #[test]
    fn cycle_counters_are_conserved_and_attribute_stalls() {
        let spec = identity_spec();
        let tokens: Vec<u64> = (0..40).map(|x| x % 256).collect();
        let mut pu = PuExec::new(&spec);
        let mut pos = 0;
        let mut cyc = 0u64;
        while !pu.finished() {
            // Starve input on some cycles and block output on others so
            // every cycle class is exercised.
            let starved = cyc % 5 == 1;
            let ready = cyc % 3 != 2;
            let have = pos < tokens.len() && !starved;
            let pins = PuIn {
                input_token: if have { tokens[pos] } else { 0 },
                input_valid: have,
                input_finished: pos >= tokens.len(),
                output_ready: ready,
            };
            let o = pu.tick(&pins);
            if o.input_ready && pins.input_valid {
                pos += 1;
            }
            cyc += 1;
            assert!(cyc < 10_000);
        }
        // A few extra drained cycles after finish.
        for _ in 0..3 {
            pu.tick(&PuIn { input_finished: true, output_ready: true, ..PuIn::default() });
        }
        let c = pu.counters();
        assert_eq!(c.total(), pu.cycles(), "one class per clocked cycle");
        assert!(c.busy >= 40, "each token costs at least one busy cycle");
        assert!(c.stall_in > 0, "starvation cycles must be attributed");
        assert!(c.stall_out > 0, "back-pressure cycles must be attributed");
        assert!(c.drained >= 3, "post-finish cycles are drained");
    }

    #[test]
    fn from_compiled_replicas_match_fresh_executors() {
        let spec = identity_spec();
        let unit = CompiledUnit::new(&spec);
        let tokens: Vec<u64> = (0..100).map(|x| x % 256).collect();
        let (fresh_out, fresh_cycles) = PuExec::run_stream(&spec, &tokens);
        for _ in 0..3 {
            let mut pu = unit.replicate();
            let mut out = Vec::new();
            let mut pos = 0usize;
            while !pu.finished() {
                let pins = PuIn {
                    input_token: if pos < tokens.len() { tokens[pos] } else { 0 },
                    input_valid: pos < tokens.len(),
                    input_finished: pos >= tokens.len(),
                    output_ready: true,
                };
                let o = pu.tick(&pins);
                if o.output_valid {
                    out.push(o.output_token);
                }
                if o.input_ready && pins.input_valid {
                    pos += 1;
                }
                assert!(pu.cycles() < 10_000);
            }
            assert_eq!(out, fresh_out);
            assert_eq!(pu.cycles(), fresh_cycles);
        }
    }

    #[test]
    fn skip_cycles_matches_ticking_through_quiescence() {
        let spec = identity_spec();

        // UntilInput: an idle unit ticked with nothing on its pins must
        // match one that slept through the same span.
        let idle_pins = PuIn::default();
        let mut ticked = PuExec::new(&spec);
        let mut slept = PuExec::new(&spec);
        assert_eq!(slept.quiescence(), Quiescence::UntilInput);
        for _ in 0..50 {
            let o = ticked.comb(&idle_pins);
            assert!(o.input_ready && !o.output_valid);
            ticked.clock(&idle_pins);
        }
        slept.skip_cycles(50);
        assert_eq!(ticked.counters(), slept.counters());
        assert_eq!(ticked.cycles(), slept.cycles());

        // Both resume identically on the same token.
        let tok = PuIn { input_token: 9, input_valid: true, output_ready: true, ..PuIn::default() };
        assert_eq!(ticked.tick(&tok), slept.tick(&tok));

        // UntilOutput: hold output_ready low until the emission is
        // pending, then compare ticking vs sleeping through the stall.
        let stall = PuIn { output_ready: false, ..PuIn::default() };
        let mut t2 = PuExec::new(&spec);
        let mut s2 = PuExec::new(&spec);
        for pu in [&mut t2, &mut s2] {
            // First tick latches the token; the second evaluates the
            // virtual cycle and stalls on the blocked emission.
            pu.tick(&PuIn { input_token: 42, input_valid: true, ..stall });
            assert_eq!(pu.quiescence(), Quiescence::None);
            pu.tick(&stall);
            assert_eq!(pu.quiescence(), Quiescence::UntilOutput);
        }
        for _ in 0..30 {
            let o = t2.comb(&stall);
            assert!(o.output_valid && o.output_token == 42);
            t2.clock(&stall);
        }
        s2.skip_cycles(30);
        assert_eq!(t2.counters(), s2.counters());
        assert_eq!(t2.cycles(), s2.cycles());
        let drain = PuIn { input_finished: true, output_ready: true, ..PuIn::default() };
        assert_eq!(t2.tick(&drain), s2.tick(&drain));
    }

    #[test]
    fn matches_interpreter_on_histogram() {
        let mut u = UnitBuilder::new("BlockFrequencies", 8, 8);
        let item_counter = u.reg("itemCounter", 7, 0);
        let frequencies = u.bram("frequencies", 256, 8);
        let idx = u.reg("frequenciesIdx", 9, 0);
        let input = u.input();
        u.if_(item_counter.eq_e(100u64), |u| {
            u.while_(idx.lt_e(256u64), |u| {
                u.emit(frequencies.read(idx));
                u.write(frequencies, idx, lit(0, 8));
                u.set(idx, idx + 1u64);
            });
            u.set(idx, lit(0, 9));
        });
        u.write(frequencies, input.clone(), frequencies.read(input) + 1u64);
        u.set(
            item_counter,
            item_counter.eq_e(100u64).mux(lit(1, 7), item_counter + 1u64),
        );
        let spec = u.build().unwrap();

        let tokens: Vec<u64> = (0..300).map(|x| (x * 13 % 256) as u64).collect();
        let isim = Interpreter::run_tokens(&spec, &tokens).unwrap();
        let (out, _) = PuExec::run_stream(&spec, &tokens);
        assert_eq!(out, isim.tokens);
    }

    /// Driving replicas through `PuExecBatch::sweep` +
    /// `adopt_lane_eval` must be pin-for-pin identical to letting each
    /// unit evaluate itself — with divergent streams, stall patterns,
    /// and loop phases across the lanes, and some units masked off
    /// (not lane-pending) on any given cycle.
    #[test]
    fn batched_lanes_match_individual_evaluation() {
        let mut u = UnitBuilder::new("BlockFrequencies", 8, 8);
        let item_counter = u.reg("itemCounter", 7, 0);
        let frequencies = u.bram("frequencies", 256, 8);
        let idx = u.reg("frequenciesIdx", 9, 0);
        let input = u.input();
        u.if_(item_counter.eq_e(20u64), |u| {
            u.while_(idx.lt_e(256u64), |u| {
                u.emit(frequencies.read(idx));
                u.write(frequencies, idx, lit(0, 8));
                u.set(idx, idx + 1u64);
            });
            u.set(idx, lit(0, 9));
        });
        u.write(frequencies, input.clone(), frequencies.read(input) + 1u64);
        u.set(
            item_counter,
            item_counter.eq_e(20u64).mux(lit(1, 7), item_counter + 1u64),
        );
        let spec = u.build().unwrap();
        let unit = CompiledUnit::new(&spec);

        const LANES: usize = 4;
        let streams: Vec<Vec<u64>> = (0..LANES as u64)
            .map(|l| (0..60 + 10 * l).map(|x| (x * 13 + 7 * l) % 256).collect())
            .collect();
        let mut batched: Vec<PuExec> = (0..LANES).map(|_| unit.replicate()).collect();
        let mut control: Vec<PuExec> = (0..LANES).map(|_| unit.replicate()).collect();
        let mut batch = PuExecBatch::for_unit(&batched[0], LANES);
        let mut pos = [0usize; LANES];
        let mut cyc = 0u64;
        while !(0..LANES).all(|l| batched[l].finished()) {
            // Pre-evaluate every lane-pending unit through the batch;
            // the rest (idle, back-pressured, drained) are masked off
            // exactly as the engine masks them.
            let group: Vec<usize> = (0..LANES).filter(|&l| batched[l].lane_pending()).collect();
            if !group.is_empty() {
                let lanes: Vec<&PuExec> = group.iter().map(|&l| &batched[l]).collect();
                batch.sweep(&lanes);
                for (lane, &l) in group.iter().enumerate() {
                    batched[l].adopt_lane_eval(&mut batch, lane);
                }
            }
            for l in 0..LANES {
                let toks = &streams[l];
                let starved = (cyc * 7 + l as u64 * 13) % 5 < 2;
                let ready = (cyc + l as u64) % 4 != 3;
                let have = pos[l] < toks.len() && !starved;
                let pins = PuIn {
                    input_token: if have { toks[pos[l]] } else { 0 },
                    input_valid: have,
                    input_finished: pos[l] >= toks.len(),
                    output_ready: ready,
                };
                let ob = batched[l].comb(&pins);
                let oc = control[l].comb(&pins);
                assert_eq!(ob, oc, "lane {l} diverged at cycle {cyc}");
                batched[l].clock(&pins);
                control[l].clock(&pins);
                if ob.input_ready && pins.input_valid {
                    pos[l] += 1;
                }
            }
            cyc += 1;
            assert!(cyc < 100_000, "batched drive did not terminate");
        }
        for l in 0..LANES {
            assert_eq!(batched[l].cycles(), control[l].cycles());
            assert_eq!(batched[l].vcycles(), control[l].vcycles());
            assert_eq!(batched[l].counters(), control[l].counters());
            assert_eq!(batched[l].state().regs, control[l].state().regs);
        }
    }

    #[test]
    fn input_starvation_mid_stream() {
        // Gaps in input_valid must not corrupt the stream (this exercises
        // the idle re-entry path that naive Fig. 4 RTL gets wrong).
        let mut u = UnitBuilder::new("AddrSum", 8, 8);
        let b = u.bram("tbl", 16, 8);
        let warm = u.reg("warm", 5, 0);
        let input = u.input();
        let nf = u.stream_finished().not_b();
        // Warm-up: write token t at address t for the first 16 tokens,
        // then emit tbl[input & 15] for later tokens — a read whose
        // address depends on the *current* token, the starvation-sensitive
        // case.
        u.if_(nf, |u| {
            u.if_else(
                warm.lt_e(16u64),
                |u| {
                    u.write(b, input.slice(3, 0), input.clone());
                    u.set(warm, warm + 1u64);
                },
                |u| u.emit(b.read(input.slice(3, 0))),
            );
        });
        let spec = u.build().unwrap();

        let mut tokens: Vec<u64> = (0..16).collect();
        tokens.extend([3u64, 7, 15, 0, 9]);
        let isim = Interpreter::run_tokens(&spec, &tokens).unwrap();

        // Drive with valid low on a pseudo-random pattern.
        let mut pu = PuExec::new(&spec);
        let mut out = Vec::new();
        let mut pos = 0;
        let mut cyc = 0u64;
        while !pu.finished() {
            let starved = (cyc * 2654435761) % 7 < 3;
            let have = pos < tokens.len() && !starved;
            let pins = PuIn {
                input_token: if have { tokens[pos] } else { 0 },
                input_valid: have,
                input_finished: pos >= tokens.len(),
                output_ready: true,
            };
            let o = pu.tick(&pins);
            if o.output_valid {
                out.push(o.output_token);
            }
            if o.input_ready && pins.input_valid {
                pos += 1;
            }
            cyc += 1;
            assert!(cyc < 10_000);
        }
        assert_eq!(out, isim.tokens);
    }
}
