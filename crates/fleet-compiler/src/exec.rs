//! `PuExec`: a fast, cycle-exact executor for compiled processing units.
//!
//! Full-system simulation replicates a unit hundreds of times; evaluating
//! every netlist node per copy per cycle would dominate run time, so this
//! executor interprets the *program* once per virtual cycle while
//! reproducing the exact external behaviour of the netlist produced by
//! [`compile`](crate::compile): the same ready-valid handshakes on the
//! same cycles, the same priority semantics for multiple writes/emits,
//! and the same `stream_finished` cleanup execution. Equivalence is
//! enforced by the cross-check integration tests (the paper's §6
//! infrastructure).
//!
//! The split [`PuExec::comb`] / [`PuExec::clock`] API mirrors a clocked
//! circuit: `comb` computes outputs from pre-edge state, `clock` commits.
//! Handshake inputs must be computed from the *caller's* pre-edge state
//! (registered handshakes), which is how the memory controller operates.

use std::sync::Arc;

use fleet_isim::{PackedProg, PendingWrites, SsaOp, SsaProg, UnitState};
use fleet_lang::{mask, UnitSpec};
use fleet_trace::{CycleClass, PuCycleCounters};

/// Input port values for one cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PuIn {
    /// Current input token (must be 0 when `input_valid` is false).
    pub input_token: u64,
    /// Token valid.
    pub input_valid: bool,
    /// Asserted from the cycle after the last token handshake, forever.
    pub input_finished: bool,
    /// Downstream ready to accept an output token.
    pub output_ready: bool,
}

/// Output port values for one cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PuOut {
    /// Unit ready to accept a token this cycle.
    pub input_ready: bool,
    /// Emitted token (0 when `output_valid` is false).
    pub output_token: u64,
    /// Token emission valid.
    pub output_valid: bool,
    /// Asserted once processing is fully complete.
    pub output_finished: bool,
}

/// One virtual cycle's evaluation, cached across stall cycles.
#[derive(Debug, Clone)]
struct VcycleEval {
    loop_active: bool,
    emit: Option<u64>,
    pending: PendingWrites,
}

/// What a unit is provably waiting on after a clock edge.
///
/// Reported by [`PuExec::quiescence`] so the channel engine can skip
/// re-evaluating a unit whose pins cannot produce a different outcome
/// until the named external condition changes. The engine still
/// accounts every skipped cycle exactly (bulk increments on wake-up).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quiescence {
    /// Not quiescent: the unit makes progress every cycle and must be
    /// evaluated.
    None,
    /// Idle with no pending work: nothing changes until `input_valid`
    /// or `input_finished` is asserted.
    UntilInput,
    /// A pending emission is back-pressured: nothing changes until
    /// `output_ready` is asserted.
    UntilOutput,
}

/// A unit program compiled and validated once, shareable across
/// hundreds of replicas.
///
/// [`PuExec::new`] revalidates the spec and rebuilds the SSA program on
/// every call; full-system simulation replicates the same unit once per
/// stream, so compile once into a `CompiledUnit` and stamp out replicas
/// with [`PuExec::from_compiled`] (or [`CompiledUnit::replicate`]) —
/// the program and spec are behind `Arc`s, so a replica costs only the
/// mutable state.
#[derive(Debug, Clone)]
pub struct CompiledUnit {
    spec: Arc<UnitSpec>,
    /// Seed-faithful reference program: every expression node swept
    /// every virtual cycle.
    ssa: Arc<SsaProg>,
    /// Optimized program (constant folding, guard pre-combining, dead
    /// node elimination); computes identical values with a much smaller
    /// per-cycle sweep. The default evaluation path.
    opt: Arc<SsaProg>,
    /// The optimized program's node sweep re-encoded as flat pre-masked
    /// instructions ([`PackedProg`]); shares `opt`'s slot numbering.
    packed: Arc<PackedProg>,
    reset: UnitState,
}

impl CompiledUnit {
    /// Validates and compiles `spec` once.
    ///
    /// # Panics
    ///
    /// Panics if the unit fails validation; validate with
    /// [`fleet_lang::validate`] (or build via `UnitBuilder`) first.
    pub fn new(spec: &UnitSpec) -> CompiledUnit {
        CompiledUnit::from_arc(Arc::new(spec.clone()))
    }

    /// Like [`CompiledUnit::new`], but takes an already-shared spec
    /// without cloning it (the serving runtime holds `Arc<UnitSpec>`s).
    ///
    /// # Panics
    ///
    /// Panics if the unit fails validation.
    pub fn from_arc(spec: Arc<UnitSpec>) -> CompiledUnit {
        fleet_lang::validate(&spec).expect("CompiledUnit requires a validated unit");
        let ssa = Arc::new(SsaProg::build(&spec));
        let opt = Arc::new(ssa.optimized(&spec));
        let packed = Arc::new(PackedProg::new(&opt));
        let reset = UnitState::reset(&spec);
        CompiledUnit { spec, ssa, opt, packed, reset }
    }

    /// The unit specification this program was compiled from.
    pub fn spec(&self) -> &UnitSpec {
        &self.spec
    }

    /// The shared spec handle.
    pub fn spec_arc(&self) -> &Arc<UnitSpec> {
        &self.spec
    }

    /// Stamps out one executor replica sharing this compiled program.
    pub fn replicate(&self) -> PuExec {
        PuExec::from_compiled(self)
    }
}

/// Fast executor with the compiled unit's cycle-level interface.
///
/// The program is compiled once into a linear SSA node vector
/// ([`SsaProg`]) and swept per virtual cycle — the same evaluation shape
/// as the netlist simulator, without per-node hashing.
#[derive(Debug, Clone)]
pub struct PuExec {
    /// Seed-faithful reference program (full per-cycle sweep).
    ssa: Arc<SsaProg>,
    /// Optimized program; the default evaluation path.
    opt: Arc<SsaProg>,
    /// Flat pre-masked encoding of `opt`'s node sweep — what the
    /// default path actually executes per virtual cycle.
    packed: Arc<PackedProg>,
    /// When set, virtual cycles evaluate through the reference program
    /// instead of the optimized one. Both are cycle-exact; the flag
    /// only selects the cost profile (see
    /// [`PuExec::set_reference_eval`]).
    reference: bool,
    vals: Vec<u64>,
    /// Recycled pending-write buffers (avoids a per-virtual-cycle
    /// allocation on the hot path).
    scratch: PendingWrites,
    state: UnitState,
    i: u64,
    v: bool,
    f: bool,
    cached: Option<VcycleEval>,
    cycles: u64,
    vcycles: u64,
    counters: PuCycleCounters,
}

impl PuExec {
    /// Creates an executor with reset state.
    ///
    /// # Panics
    ///
    /// Panics if the unit fails validation; validate with
    /// [`fleet_lang::validate`] (or build via `UnitBuilder`) first.
    pub fn new(spec: &UnitSpec) -> PuExec {
        PuExec::from_compiled(&CompiledUnit::new(spec))
    }

    /// Creates an executor with reset state from an already-compiled
    /// program, sharing the SSA node vector instead of rebuilding it.
    ///
    /// Replicating a unit across hundreds of PUs this way skips the
    /// per-replica validation + compilation that dominated system setup.
    pub fn from_compiled(unit: &CompiledUnit) -> PuExec {
        PuExec {
            vals: unit.opt.seed_vals(),
            ssa: Arc::clone(&unit.ssa),
            opt: Arc::clone(&unit.opt),
            packed: Arc::clone(&unit.packed),
            reference: false,
            scratch: PendingWrites::default(),
            state: unit.reset.clone(),
            i: 0,
            v: false,
            f: false,
            cached: None,
            cycles: 0,
            vcycles: 0,
            counters: PuCycleCounters::default(),
        }
    }

    /// Clock cycles elapsed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Virtual cycles completed.
    pub fn vcycles(&self) -> u64 {
        self.vcycles
    }

    /// Cycle classification from the unit's own perspective: busy
    /// (committed a virtual cycle), stalled on output, waiting for
    /// input, or drained. One class per [`PuExec::clock`], so
    /// `counters().total() == cycles()`.
    pub fn counters(&self) -> PuCycleCounters {
        self.counters
    }

    /// Unit state (testing/inspection).
    pub fn state(&self) -> &UnitState {
        &self.state
    }

    /// Selects the evaluation path: `true` sweeps the seed-faithful
    /// reference program, `false` (the default) the optimized one.
    ///
    /// Both compute identical virtual cycles — emissions, state writes,
    /// handshakes — so this only changes the simulator's *cost*, never
    /// its behaviour. The naive engine tick drives units through the
    /// reference path so throughput comparisons measure the real
    /// pre-optimization cost profile.
    pub fn set_reference_eval(&mut self, reference: bool) {
        if reference != self.reference {
            self.reference = reference;
            // The two programs have different slot layouts and baked
            // constants; restart from the right seed buffer.
            let prog = if reference { &self.ssa } else { &self.opt };
            self.vals.clear();
            self.vals.extend_from_slice(&prog.seed_vals());
        }
    }

    /// Whether virtual cycles currently evaluate through the reference
    /// program.
    pub fn reference_eval(&self) -> bool {
        self.reference
    }

    fn eval_vcycle(&mut self) -> &VcycleEval {
        if self.cached.is_none() {
            // The packed encoding shares `opt`'s slot numbering, so
            // `opt`'s loop conditions and ops read its buffer directly.
            let prog = if self.reference { &self.ssa } else { &self.opt };
            if self.reference {
                prog.eval(&self.state, self.i, self.f, &mut self.vals);
            } else {
                self.packed.eval(&self.state, self.i, self.f, &mut self.vals);
            }
            let loop_active = prog.any_loop(&self.vals);
            let vals = &self.vals;
            let mut pending = std::mem::take(&mut self.scratch);
            let mut emit = None;
            for op in &prog.ops {
                if op.in_loop != loop_active
                    || op.guards.iter().any(|&g| vals[g as usize] == 0)
                {
                    continue;
                }
                match &op.op {
                    SsaOp::SetReg { reg, width, val } => {
                        // Priority: the first active assignment wins, like
                        // the compiled priority mux.
                        let r = *reg as usize;
                        if !pending.regs.iter().any(|(idx, _)| *idx == r) {
                            pending.regs.push((r, mask(vals[*val as usize], *width)));
                        }
                    }
                    SsaOp::SetVecReg { vr, width, idx, val } => {
                        let v = *vr as usize;
                        let elements = self.state.vec_regs[v].len();
                        let i = vals[*idx as usize] as usize;
                        if i >= elements {
                            // Out-of-range index selects no element, like
                            // the compiled per-element write decoders.
                            continue;
                        }
                        if !pending
                            .vec_regs
                            .iter()
                            .any(|(w, e, _)| *w == v && *e == i)
                        {
                            pending.vec_regs.push((v, i, mask(vals[*val as usize], *width)));
                        }
                    }
                    SsaOp::BramWrite { bram, aw, dw, addr, val } => {
                        let b = *bram as usize;
                        if !pending.brams.iter().any(|(idx, _, _)| *idx == b) {
                            pending.brams.push((
                                b,
                                mask(vals[*addr as usize], *aw),
                                mask(vals[*val as usize], *dw),
                            ));
                        }
                    }
                    SsaOp::Emit { val, width } => {
                        if emit.is_none() {
                            emit = Some(mask(vals[*val as usize], *width));
                        }
                    }
                }
            }
            self.cached = Some(VcycleEval { loop_active, emit, pending });
        }
        self.cached.as_ref().expect("just filled")
    }

    /// Combinational outputs for this cycle (no state change besides the
    /// internal evaluation cache).
    pub fn comb(&mut self, pins: &PuIn) -> PuOut {
        if !self.v {
            return PuOut {
                input_ready: true,
                output_token: 0,
                output_valid: false,
                output_finished: !self.v && self.f,
            };
        }
        let out_ready = pins.output_ready;
        let ev = self.eval_vcycle();
        let output_valid = ev.emit.is_some();
        let while_done = !ev.loop_active;
        let handshake_ok = !output_valid || out_ready;
        PuOut {
            input_ready: while_done && handshake_ok,
            output_token: ev.emit.unwrap_or(0),
            output_valid,
            output_finished: false,
        }
    }

    /// Clock edge: commits the virtual cycle when it finishes and latches
    /// a new token / the finish flag when `input_ready`.
    pub fn clock(&mut self, pins: &PuIn) {
        self.cycles += 1;
        if self.v {
            let (handshake_ok, while_done) = {
                let ev = self.eval_vcycle();
                (ev.emit.is_none() || pins.output_ready, !ev.loop_active)
            };
            let v_done = handshake_ok;
            self.counters.add(if handshake_ok {
                CycleClass::Busy
            } else {
                CycleClass::StallOut
            });
            if v_done {
                let ev = self.cached.take().expect("evaluated in this cycle");
                ev.pending.commit(&mut self.state);
                // Recycle the pending-write buffers for the next
                // virtual cycle.
                self.scratch = ev.pending;
                self.scratch.clear();
                self.vcycles += 1;
                if while_done {
                    // input_ready was asserted: accept next token or start
                    // the cleanup execution.
                    let new_v = pins.input_valid || (!self.f && pins.input_finished);
                    self.f = self.f || pins.input_finished;
                    self.i = if pins.input_valid { pins.input_token } else { 0 };
                    self.v = new_v;
                }
                // Loop continuing: state committed, next loop virtual
                // cycle re-evaluates (cache already cleared by take()).
            }
        } else {
            // Idle: input_ready is high.
            self.counters.add(if self.f {
                CycleClass::Drained
            } else {
                CycleClass::StallIn
            });
            let new_v = pins.input_valid || (!self.f && pins.input_finished);
            self.f = self.f || pins.input_finished;
            self.i = if pins.input_valid { pins.input_token } else { 0 };
            self.v = new_v;
            self.cached = None;
        }
    }

    /// Convenience: `comb` then `clock`, returning the outputs.
    pub fn tick(&mut self, pins: &PuIn) -> PuOut {
        let out = self.comb(pins);
        self.clock(pins);
        out
    }

    /// Whether the unit has fully finished (output side).
    pub fn finished(&self) -> bool {
        !self.v && self.f
    }

    /// What the unit is provably waiting on, judged from post-edge state.
    ///
    /// `UntilInput` means the unit is idle with nothing latched: every
    /// subsequent [`PuExec::tick`] with `!input_valid && !input_finished`
    /// is a pure `StallIn` cycle. `UntilOutput` means a fully-evaluated
    /// virtual cycle is blocked on an emission: every subsequent tick
    /// with `!output_ready` is a pure `StallOut` cycle holding
    /// `output_valid` with the same token. Either way the pins the unit
    /// drives are constant, so a simulator may skip re-evaluation and
    /// account the skipped span with [`PuExec::skip_cycles`].
    pub fn quiescence(&self) -> Quiescence {
        if self.v {
            if self.cached.is_some() {
                // A cached evaluation survives `clock` only when its
                // emission was back-pressured (the StallOut path).
                Quiescence::UntilOutput
            } else {
                Quiescence::None
            }
        } else if self.f {
            // Finished: drained cycles, handled by the caller.
            Quiescence::None
        } else {
            Quiescence::UntilInput
        }
    }

    /// Accounts `n` skipped cycles in bulk, as if [`PuExec::clock`] had
    /// run `n` times under the quiescent condition reported by
    /// [`PuExec::quiescence`] (which must not be `None`).
    pub fn skip_cycles(&mut self, n: u64) {
        self.cycles += n;
        self.counters.add_n(
            if self.v { CycleClass::StallOut } else { CycleClass::StallIn },
            n,
        );
    }

    /// Drives the executor over a whole token stream with no stalls,
    /// returning the emitted tokens and total cycles. Used by tests and
    /// single-unit benchmarks.
    pub fn run_stream(spec: &UnitSpec, tokens: &[u64]) -> (Vec<u64>, u64) {
        let mut pu = PuExec::new(spec);
        let mut out = Vec::new();
        let mut pos = 0usize;
        let mut guard = 0u64;
        let limit = 1_000_000_000u64;
        while !pu.finished() {
            let pins = PuIn {
                input_token: if pos < tokens.len() { tokens[pos] } else { 0 },
                input_valid: pos < tokens.len(),
                input_finished: pos >= tokens.len(),
                output_ready: true,
            };
            let o = pu.tick(&pins);
            if o.output_valid {
                out.push(o.output_token);
            }
            if o.input_ready && pins.input_valid {
                pos += 1;
            }
            guard += 1;
            assert!(guard < limit, "run_stream did not terminate");
        }
        (out, pu.cycles())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleet_isim::Interpreter;
    use fleet_lang::{lit, UnitBuilder};

    fn identity_spec() -> UnitSpec {
        let mut u = UnitBuilder::new("Identity", 8, 8);
        let inp = u.input();
        let nf = u.stream_finished().not_b();
        u.if_(nf, |u| u.emit(inp.clone()));
        u.build().unwrap()
    }

    #[test]
    fn identity_passes_tokens_through() {
        let spec = identity_spec();
        let (out, cycles) = PuExec::run_stream(&spec, &[5, 6, 7]);
        assert_eq!(out, vec![5, 6, 7]);
        // 1 cycle latency to accept, 3 virtual cycles, 1 cleanup cycle,
        // plus idle detection.
        assert!((5..=8).contains(&cycles), "cycles = {cycles}");
    }

    #[test]
    fn sustains_one_token_per_cycle() {
        // With no stalls, an identity unit must consume one token per
        // cycle in steady state (the §4 throughput guarantee).
        let spec = identity_spec();
        let n = 1000;
        let tokens: Vec<u64> = (0..n).map(|x| x % 256).collect();
        let (out, cycles) = PuExec::run_stream(&spec, &tokens);
        assert_eq!(out.len(), n as usize);
        assert!(
            cycles <= n + 5,
            "throughput below 1 token/cycle: {cycles} cycles for {n} tokens"
        );
    }

    #[test]
    fn output_stall_preserves_tokens() {
        // Accept output only every 3rd cycle; the stream must still come
        // out complete and in order.
        let spec = identity_spec();
        let tokens: Vec<u64> = (0..50).map(|x| (x * 7 % 256) as u64).collect();
        let mut pu = PuExec::new(&spec);
        let mut out = Vec::new();
        let mut pos = 0;
        let mut cyc = 0u64;
        while !pu.finished() {
            let ready = cyc.is_multiple_of(3);
            let pins = PuIn {
                input_token: if pos < tokens.len() { tokens[pos] } else { 0 },
                input_valid: pos < tokens.len(),
                input_finished: pos >= tokens.len(),
                output_ready: ready,
            };
            let o = pu.tick(&pins);
            if o.output_valid && ready {
                out.push(o.output_token);
            }
            if o.input_ready && pins.input_valid {
                pos += 1;
            }
            cyc += 1;
            assert!(cyc < 10_000);
        }
        assert_eq!(out, tokens);
    }

    #[test]
    fn cycle_counters_are_conserved_and_attribute_stalls() {
        let spec = identity_spec();
        let tokens: Vec<u64> = (0..40).map(|x| x % 256).collect();
        let mut pu = PuExec::new(&spec);
        let mut pos = 0;
        let mut cyc = 0u64;
        while !pu.finished() {
            // Starve input on some cycles and block output on others so
            // every cycle class is exercised.
            let starved = cyc % 5 == 1;
            let ready = cyc % 3 != 2;
            let have = pos < tokens.len() && !starved;
            let pins = PuIn {
                input_token: if have { tokens[pos] } else { 0 },
                input_valid: have,
                input_finished: pos >= tokens.len(),
                output_ready: ready,
            };
            let o = pu.tick(&pins);
            if o.input_ready && pins.input_valid {
                pos += 1;
            }
            cyc += 1;
            assert!(cyc < 10_000);
        }
        // A few extra drained cycles after finish.
        for _ in 0..3 {
            pu.tick(&PuIn { input_finished: true, output_ready: true, ..PuIn::default() });
        }
        let c = pu.counters();
        assert_eq!(c.total(), pu.cycles(), "one class per clocked cycle");
        assert!(c.busy >= 40, "each token costs at least one busy cycle");
        assert!(c.stall_in > 0, "starvation cycles must be attributed");
        assert!(c.stall_out > 0, "back-pressure cycles must be attributed");
        assert!(c.drained >= 3, "post-finish cycles are drained");
    }

    #[test]
    fn from_compiled_replicas_match_fresh_executors() {
        let spec = identity_spec();
        let unit = CompiledUnit::new(&spec);
        let tokens: Vec<u64> = (0..100).map(|x| x % 256).collect();
        let (fresh_out, fresh_cycles) = PuExec::run_stream(&spec, &tokens);
        for _ in 0..3 {
            let mut pu = unit.replicate();
            let mut out = Vec::new();
            let mut pos = 0usize;
            while !pu.finished() {
                let pins = PuIn {
                    input_token: if pos < tokens.len() { tokens[pos] } else { 0 },
                    input_valid: pos < tokens.len(),
                    input_finished: pos >= tokens.len(),
                    output_ready: true,
                };
                let o = pu.tick(&pins);
                if o.output_valid {
                    out.push(o.output_token);
                }
                if o.input_ready && pins.input_valid {
                    pos += 1;
                }
                assert!(pu.cycles() < 10_000);
            }
            assert_eq!(out, fresh_out);
            assert_eq!(pu.cycles(), fresh_cycles);
        }
    }

    #[test]
    fn skip_cycles_matches_ticking_through_quiescence() {
        let spec = identity_spec();

        // UntilInput: an idle unit ticked with nothing on its pins must
        // match one that slept through the same span.
        let idle_pins = PuIn::default();
        let mut ticked = PuExec::new(&spec);
        let mut slept = PuExec::new(&spec);
        assert_eq!(slept.quiescence(), Quiescence::UntilInput);
        for _ in 0..50 {
            let o = ticked.comb(&idle_pins);
            assert!(o.input_ready && !o.output_valid);
            ticked.clock(&idle_pins);
        }
        slept.skip_cycles(50);
        assert_eq!(ticked.counters(), slept.counters());
        assert_eq!(ticked.cycles(), slept.cycles());

        // Both resume identically on the same token.
        let tok = PuIn { input_token: 9, input_valid: true, output_ready: true, ..PuIn::default() };
        assert_eq!(ticked.tick(&tok), slept.tick(&tok));

        // UntilOutput: hold output_ready low until the emission is
        // pending, then compare ticking vs sleeping through the stall.
        let stall = PuIn { output_ready: false, ..PuIn::default() };
        let mut t2 = PuExec::new(&spec);
        let mut s2 = PuExec::new(&spec);
        for pu in [&mut t2, &mut s2] {
            // First tick latches the token; the second evaluates the
            // virtual cycle and stalls on the blocked emission.
            pu.tick(&PuIn { input_token: 42, input_valid: true, ..stall });
            assert_eq!(pu.quiescence(), Quiescence::None);
            pu.tick(&stall);
            assert_eq!(pu.quiescence(), Quiescence::UntilOutput);
        }
        for _ in 0..30 {
            let o = t2.comb(&stall);
            assert!(o.output_valid && o.output_token == 42);
            t2.clock(&stall);
        }
        s2.skip_cycles(30);
        assert_eq!(t2.counters(), s2.counters());
        assert_eq!(t2.cycles(), s2.cycles());
        let drain = PuIn { input_finished: true, output_ready: true, ..PuIn::default() };
        assert_eq!(t2.tick(&drain), s2.tick(&drain));
    }

    #[test]
    fn matches_interpreter_on_histogram() {
        let mut u = UnitBuilder::new("BlockFrequencies", 8, 8);
        let item_counter = u.reg("itemCounter", 7, 0);
        let frequencies = u.bram("frequencies", 256, 8);
        let idx = u.reg("frequenciesIdx", 9, 0);
        let input = u.input();
        u.if_(item_counter.eq_e(100u64), |u| {
            u.while_(idx.lt_e(256u64), |u| {
                u.emit(frequencies.read(idx));
                u.write(frequencies, idx, lit(0, 8));
                u.set(idx, idx + 1u64);
            });
            u.set(idx, lit(0, 9));
        });
        u.write(frequencies, input.clone(), frequencies.read(input) + 1u64);
        u.set(
            item_counter,
            item_counter.eq_e(100u64).mux(lit(1, 7), item_counter + 1u64),
        );
        let spec = u.build().unwrap();

        let tokens: Vec<u64> = (0..300).map(|x| (x * 13 % 256) as u64).collect();
        let isim = Interpreter::run_tokens(&spec, &tokens).unwrap();
        let (out, _) = PuExec::run_stream(&spec, &tokens);
        assert_eq!(out, isim.tokens);
    }

    #[test]
    fn input_starvation_mid_stream() {
        // Gaps in input_valid must not corrupt the stream (this exercises
        // the idle re-entry path that naive Fig. 4 RTL gets wrong).
        let mut u = UnitBuilder::new("AddrSum", 8, 8);
        let b = u.bram("tbl", 16, 8);
        let warm = u.reg("warm", 5, 0);
        let input = u.input();
        let nf = u.stream_finished().not_b();
        // Warm-up: write token t at address t for the first 16 tokens,
        // then emit tbl[input & 15] for later tokens — a read whose
        // address depends on the *current* token, the starvation-sensitive
        // case.
        u.if_(nf, |u| {
            u.if_else(
                warm.lt_e(16u64),
                |u| {
                    u.write(b, input.slice(3, 0), input.clone());
                    u.set(warm, warm + 1u64);
                },
                |u| u.emit(b.read(input.slice(3, 0))),
            );
        });
        let spec = u.build().unwrap();

        let mut tokens: Vec<u64> = (0..16).collect();
        tokens.extend([3u64, 7, 15, 0, 9]);
        let isim = Interpreter::run_tokens(&spec, &tokens).unwrap();

        // Drive with valid low on a pseudo-random pattern.
        let mut pu = PuExec::new(&spec);
        let mut out = Vec::new();
        let mut pos = 0;
        let mut cyc = 0u64;
        while !pu.finished() {
            let starved = (cyc * 2654435761) % 7 < 3;
            let have = pos < tokens.len() && !starved;
            let pins = PuIn {
                input_token: if have { tokens[pos] } else { 0 },
                input_valid: have,
                input_finished: pos >= tokens.len(),
                output_ready: true,
            };
            let o = pu.tick(&pins);
            if o.output_valid {
                out.push(o.output_token);
            }
            if o.input_ready && pins.input_valid {
                pos += 1;
            }
            cyc += 1;
            assert!(cyc < 10_000);
        }
        assert_eq!(out, isim.tokens);
    }
}
