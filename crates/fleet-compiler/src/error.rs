//! Compilation errors.

use std::error::Error;
use std::fmt;

use fleet_lang::ValidateError;

/// Errors raised while lowering a Fleet unit to RTL.
#[derive(Debug, Clone)]
pub enum CompileError {
    /// The unit failed language validation.
    Invalid(ValidateError),
    /// A BRAM read appears inside an `if`/`while` condition that gates
    /// other BRAM reads, so the read-address multiplexer for the next
    /// virtual cycle would depend on a BRAM output — a dependent read
    /// that cannot be scheduled in the two-stage pipeline (§4).
    BramReadInCondition {
        /// Name of the BRAM read inside the condition.
        bram: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Invalid(e) => write!(f, "unit failed validation: {e}"),
            CompileError::BramReadInCondition { bram } => write!(
                f,
                "BRAM {bram} is read inside a condition; condition-gated BRAM reads \
                 are dependent reads and cannot be pipelined — register the read \
                 result in a previous virtual cycle instead"
            ),
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Invalid(e) => Some(e),
            CompileError::BramReadInCondition { .. } => None,
        }
    }
}

impl From<ValidateError> for CompileError {
    fn from(e: ValidateError) -> Self {
        CompileError::Invalid(e)
    }
}
