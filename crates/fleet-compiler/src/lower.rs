//! Lowering of Fleet programs to the two-stage virtual-cycle pipeline.
//!
//! This is the compilation scheme of §4 of the paper, generalized from
//! Figure 4's worked example:
//!
//! * For every register, all assignments are gathered with their guard
//!   conditions into a priority multiplexer producing the *next value*
//!   `r_n`; assignments outside `while` bodies additionally require
//!   `while_done`.
//! * BRAM reads are pipelined: the read address for the *next* virtual
//!   cycle is computed from next-state values and supplied one cycle
//!   early; a `(lastAddr, lastData)` forwarding register pair hides the
//!   read-old-value semantics of same-address write→read across
//!   consecutive virtual cycles.
//! * `while` loops contribute `while_done`; `input_ready` is held low
//!   while loops run so the same token is observed across loop cycles.
//! * Input/output stalls gate all state commits on `v_done`
//!   (a virtual cycle finishes only when any emitted token is accepted),
//!   and the read address is *held* during a stall so BRAM outputs stay
//!   stable.
//!
//! The generated module has the exact ready-valid interface of §4 and is
//! guaranteed to sustain one virtual cycle per real cycle in the absence
//! of stalls.
//!
//! **Protocol note:** the environment must drive `input_token` to 0 when
//! `input_valid` is low; the cleanup execution then observes a zero dummy
//! token, matching the software simulator. The memory controller in
//! `fleet-memctl` follows this convention.

use std::collections::HashMap;

use fleet_lang::{
    BinOp, E, ExprNode, FlatProgram, OpKind, UnaryOp, UnitSpec, Width,
};
use fleet_rtl::{Netlist, NodeId, RtlBramId, RtlRegId};

use crate::error::CompileError;

/// Translation context: current-cycle values or next-cycle values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Ctx {
    /// State as observed by the executing virtual cycle.
    Cur,
    /// State as it will be after this clock edge (used for the
    /// asynchronously supplied read address of the next virtual cycle).
    Next,
}

/// A BRAM read site: one syntactic occurrence of `bram[addr]`.
#[derive(Clone)]
struct ReadSite {
    addr: E,
    guard: Vec<E>,
    in_loop: bool,
}

struct Lower<'a> {
    spec: &'a UnitSpec,
    flat: &'a FlatProgram,
    nl: Netlist,
    memo: HashMap<(usize, Ctx), NodeId>,

    // Ports.
    input_token: NodeId,
    input_valid: NodeId,
    input_finished: NodeId,
    output_ready: NodeId,

    // Control registers.
    i_reg: RtlRegId,
    i_cur: NodeId,
    v_reg: RtlRegId,
    v_cur: NodeId,
    f_reg: RtlRegId,
    f_cur: NodeId,

    // User state.
    reg_rtl: Vec<RtlRegId>,
    reg_cur: Vec<NodeId>,
    vec_rtl: Vec<Vec<RtlRegId>>,
    vec_cur: Vec<Vec<NodeId>>,
    bram_rtl: Vec<RtlBramId>,
    bram_rd_raw: Vec<NodeId>,
    last_addr: Vec<(RtlRegId, NodeId)>,
    last_data: Vec<(RtlRegId, NodeId)>,

    // Filled in during lowering.
    bram_fwd: Vec<Option<NodeId>>,
    reg_next: Vec<Option<NodeId>>,
    vec_next: Vec<Vec<NodeId>>,
    i_next: Option<NodeId>,
    f_next: Option<NodeId>,
}

/// Compiles a validated unit into an RTL netlist with the §4 interface.
///
/// # Errors
///
/// Returns [`CompileError::Invalid`] if the unit fails validation, or
/// [`CompileError::BramReadInCondition`] for condition-gated reads that
/// would make the next read address depend on a BRAM output.
pub fn compile(spec: &UnitSpec) -> Result<Netlist, CompileError> {
    fleet_lang::validate(spec)?;
    let flat = FlatProgram::build(&spec.body);

    // Conditions (guards and loop conditions) may not contain BRAM reads:
    // they select the next-cycle read address, so a read inside them is a
    // dependent read.
    for op in &flat.ops {
        for g in &op.guard {
            check_no_read_in_cond(spec, g)?;
        }
    }
    for c in &flat.loop_conds {
        check_no_read_in_cond(spec, c)?;
    }

    let mut nl = Netlist::new(&spec.name);

    // Ports (§4 interface).
    let input_token = nl.input("input_token", spec.input_token_bits);
    let input_valid = nl.input("input_valid", 1);
    let input_finished = nl.input("input_finished", 1);
    let output_ready = nl.input("output_ready", 1);

    // Control registers.
    let (i_reg, i_cur) = nl.reg("i", spec.input_token_bits, 0);
    let (v_reg, v_cur) = nl.reg("v", 1, 0);
    let (f_reg, f_cur) = nl.reg("f", 1, 0);

    // User registers.
    let mut reg_rtl = Vec::new();
    let mut reg_cur = Vec::new();
    for r in &spec.regs {
        let (id, out) = nl.reg(&r.name, r.width, r.init);
        reg_rtl.push(id);
        reg_cur.push(out);
    }

    // Vector registers: one RTL register per element.
    let mut vec_rtl = Vec::new();
    let mut vec_cur = Vec::new();
    for v in &spec.vec_regs {
        let mut ids = Vec::new();
        let mut outs = Vec::new();
        for e in 0..v.elements {
            let (id, out) = nl.reg(format!("{}_{e}", v.name), v.width, v.init);
            ids.push(id);
            outs.push(out);
        }
        vec_rtl.push(ids);
        vec_cur.push(outs);
    }

    // BRAMs with forwarding registers (Fig. 4 lines 9-11).
    let mut bram_rtl = Vec::new();
    let mut bram_rd_raw = Vec::new();
    let mut last_addr = Vec::new();
    let mut last_data = Vec::new();
    for b in &spec.brams {
        let (id, rd) = nl.bram(&b.name, b.data_width, b.addr_width);
        bram_rtl.push(id);
        bram_rd_raw.push(rd);
        // Sentinel init: all ones in (addr_width + 1) bits can never equal
        // a zero-extended address.
        let sentinel = fleet_lang::mask(u64::MAX, b.addr_width + 1);
        let (la, la_out) = nl.reg(format!("{}_lastAddr", b.name), b.addr_width + 1, sentinel);
        let (ld, ld_out) = nl.reg(format!("{}_lastData", b.name), b.data_width, 0);
        last_addr.push((la, la_out));
        last_data.push((ld, ld_out));
    }

    let n_vec = spec.vec_regs.len();
    let n_regs = spec.regs.len();
    let n_brams = spec.brams.len();
    let mut lo = Lower {
        spec,
        flat: &flat,
        nl,
        memo: HashMap::new(),
        input_token,
        input_valid,
        input_finished,
        output_ready,
        i_reg,
        i_cur,
        v_reg,
        v_cur,
        f_reg,
        f_cur,
        reg_rtl,
        reg_cur,
        vec_rtl,
        vec_cur,
        bram_rtl,
        bram_rd_raw,
        last_addr,
        last_data,
        bram_fwd: vec![None; n_brams],
        reg_next: vec![None; n_regs],
        vec_next: vec![Vec::new(); n_vec],
        i_next: None,
        f_next: None,
    };
    lo.run()?;
    Ok(lo.nl)
}

fn check_no_read_in_cond(spec: &UnitSpec, e: &E) -> Result<(), CompileError> {
    if e.contains_bram_read() {
        let mut name = String::from("<bram>");
        e.visit(&mut |n| {
            if let ExprNode::BramRead(id, _) = n.node() {
                if let Some(d) = spec.brams.get(id.index()) {
                    name = d.name.clone();
                }
            }
        });
        return Err(CompileError::BramReadInCondition { bram: name });
    }
    Ok(())
}

impl<'a> Lower<'a> {
    fn run(&mut self) -> Result<(), CompileError> {
        // ---- Collect BRAM read sites (one mux per BRAM read port). ----
        let mut read_sites: Vec<Vec<ReadSite>> = vec![Vec::new(); self.spec.brams.len()];
        for op in self.flat.ops.iter() {
            let exprs: Vec<&E> = match &op.op {
                OpKind::SetReg(_, v) => vec![v],
                OpKind::SetVecReg(_, i, v) => vec![i, v],
                OpKind::BramWrite(_, a, v) => vec![a, v],
                OpKind::Emit(v) => vec![v],
            };
            for e in exprs {
                e.visit(&mut |n| {
                    if let ExprNode::BramRead(id, addr) = n.node() {
                        let sites = &mut read_sites[id.index()];
                        let dup = sites.iter().any(|s| {
                            std::ptr::eq(s.addr.node(), addr.node())
                                && s.guard.len() == op.guard.len()
                                && s.in_loop == op.in_loop
                        });
                        if !dup {
                            sites.push(ReadSite {
                                addr: addr.clone(),
                                guard: op.guard.clone(),
                                in_loop: op.in_loop,
                            });
                        }
                    }
                });
            }
        }

        // ---- while_done (current values), Fig. 4 line 15. ----
        let loop_conds_cur: Vec<NodeId> = self
            .flat
            .loop_conds
            .iter()
            .map(|c| self.xlate(c, Ctx::Cur))
            .collect::<Result<_, _>>()?;
        let while_done_cur = self.nor_all(&loop_conds_cur);

        // ---- Current read address per BRAM (Fig. 4 line 28). ----
        let mut cur_rd_addr: Vec<NodeId> = Vec::new();
        for (b, sites) in read_sites.iter().enumerate() {
            let aw = self.spec.brams[b].addr_width;
            let node = self.read_addr_mux(sites, Ctx::Cur, while_done_cur, aw)?;
            cur_rd_addr.push(node);
        }

        // ---- Forwarded read data (Fig. 4 line 31). ----
        for (b, &rd_addr) in cur_rd_addr.iter().enumerate() {
            let aw = self.spec.brams[b].addr_width;
            let ext = self.zext(rd_addr, aw + 1);
            let (_, la_out) = self.last_addr[b];
            let (_, ld_out) = self.last_data[b];
            let hit = self.nl.binary(BinOp::Eq, ext, la_out);
            let fwd = self.nl.mux(hit, ld_out, self.bram_rd_raw[b]);
            self.bram_fwd[b] = Some(fwd);
        }

        // ---- Emits: output_valid / output_token (Fig. 4 lines 38-39). --
        let emit_ops: Vec<_> = self.flat.emits().cloned().collect();
        let mut emit_guard_nodes = Vec::new();
        let mut emit_values = Vec::new();
        for op in &emit_ops {
            let g = self.op_guard(&op.guard, op.in_loop, Ctx::Cur, while_done_cur)?;
            let OpKind::Emit(v) = &op.op else { unreachable!() };
            let val = self.xlate(v, Ctx::Cur)?;
            emit_guard_nodes.push(g);
            emit_values.push(self.resize(val, self.spec.output_token_bits));
        }
        let emit_any = self.or_all(&emit_guard_nodes);
        let output_valid = self.nl.and_b(self.v_cur, emit_any);
        let zero_out = self.nl.constant(0, self.spec.output_token_bits);
        let token_mux = self.priority_mux(&emit_guard_nodes, &emit_values, zero_out);
        // Gate the token on validity so the bus carries 0 between
        // handshakes (the protocol convention the whole system follows).
        let output_token = self.nl.mux(output_valid, token_mux, zero_out);

        // ---- v_done (Fig. 4 line 14). ----
        let not_ov = self.nl.not_b(output_valid);
        let ov_or_ready = self.nl.or_b(not_ov, self.output_ready);
        let v_done = self.nl.and_b(self.v_cur, ov_or_ready);

        // ---- input_ready (Fig. 4 line 37). ----
        let not_v = self.nl.not_b(self.v_cur);
        let wd_and_ok = self.nl.and_b(while_done_cur, ov_or_ready);
        let input_ready = self.nl.or_b(not_v, wd_and_ok);

        // ---- Register next values r_n (Fig. 4 lines 17-18). ----
        for r in 0..self.spec.regs.len() {
            let rid = self.spec.reg_id(r);
            let ops: Vec<_> = self.flat.reg_ops(rid).cloned().collect();
            let mut guards = Vec::new();
            let mut values = Vec::new();
            for op in &ops {
                let g = self.op_guard(&op.guard, op.in_loop, Ctx::Cur, while_done_cur)?;
                let OpKind::SetReg(_, v) = &op.op else { unreachable!() };
                let val = self.xlate(v, Ctx::Cur)?;
                guards.push(g);
                values.push(self.resize(val, rid.width()));
            }
            let r_n = self.priority_mux(&guards, &values, self.reg_cur[r]);
            // Commit gating (Fig. 4 lines 19-21).
            let next = self.nl.mux(v_done, r_n, self.reg_cur[r]);
            self.reg_next[r] = Some(next);
            self.nl.set_reg_next(self.reg_rtl[r], next);
        }

        // ---- Vector-register element next values. ----
        for vr in 0..self.spec.vec_regs.len() {
            let vrid = self.spec.vec_reg_id(vr);
            let ops: Vec<_> = self
                .flat
                .ops
                .iter()
                .filter(|g| matches!(&g.op, OpKind::SetVecReg(id, _, _) if *id == vrid))
                .cloned()
                .collect();
            let elements = self.spec.vec_regs[vr].elements;
            let mut elem_next = Vec::with_capacity(elements);
            for e in 0..elements {
                let mut guards = Vec::new();
                let mut values = Vec::new();
                for op in &ops {
                    let OpKind::SetVecReg(_, idx, v) = &op.op else { unreachable!() };
                    let g0 =
                        self.op_guard(&op.guard, op.in_loop, Ctx::Cur, while_done_cur)?;
                    let idx_n = self.xlate(idx, Ctx::Cur)?;
                    let e_const = self.nl.constant(e as u64, self.nl.width(idx_n).max(1));
                    let idx_r = self.resize(idx_n, self.nl.width(e_const));
                    let sel = self.nl.binary(BinOp::Eq, idx_r, e_const);
                    let g = self.nl.and_b(g0, sel);
                    let val = self.xlate(v, Ctx::Cur)?;
                    guards.push(g);
                    values.push(self.resize(val, vrid.width()));
                }
                let v_n = self.priority_mux(&guards, &values, self.vec_cur[vr][e]);
                let next = self.nl.mux(v_done, v_n, self.vec_cur[vr][e]);
                self.nl.set_reg_next(self.vec_rtl[vr][e], next);
                elem_next.push(next);
            }
            self.vec_next[vr] = elem_next;
        }

        // ---- Control register next values (Fig. 4 lines 40-44). ----
        let i_next = self.nl.mux(input_ready, self.input_token, self.i_cur);
        self.i_next = Some(i_next);
        self.nl.set_reg_next(self.i_reg, i_next);

        let not_f = self.nl.not_b(self.f_cur);
        let fin_start = self.nl.and_b(not_f, self.input_finished);
        let v_new = self.nl.or_b(self.input_valid, fin_start);
        let v_next = self.nl.mux(input_ready, v_new, self.v_cur);
        self.nl.set_reg_next(self.v_reg, v_next);

        let f_new = self.nl.or_b(self.f_cur, self.input_finished);
        let f_next = self.nl.mux(input_ready, f_new, self.f_cur);
        self.f_next = Some(f_next);
        self.nl.set_reg_next(self.f_reg, f_next);

        // ---- BRAM write ports (Fig. 4 lines 33-35) + forwarding regs. --
        for b in 0..self.spec.brams.len() {
            let bid = self.spec.bram_id(b);
            let ops: Vec<_> = self.flat.bram_writes(bid).cloned().collect();
            let mut guards = Vec::new();
            let mut addrs = Vec::new();
            let mut datas = Vec::new();
            for op in &ops {
                let g = self.op_guard(&op.guard, op.in_loop, Ctx::Cur, while_done_cur)?;
                let OpKind::BramWrite(_, a, v) = &op.op else { unreachable!() };
                let an = self.xlate(a, Ctx::Cur)?;
                let vn = self.xlate(v, Ctx::Cur)?;
                guards.push(g);
                addrs.push(self.resize(an, bid.addr_width()));
                datas.push(self.resize(vn, bid.data_width()));
            }
            let any_write = self.or_all(&guards);
            let wr_en = self.nl.and_b(v_done, any_write);
            let zero_a = self.nl.constant(0, bid.addr_width());
            let zero_d = self.nl.constant(0, bid.data_width());
            let wr_addr = self.priority_mux(&guards, &addrs, zero_a);
            let wr_data = self.priority_mux(&guards, &datas, zero_d);

            // Forwarding registers (Fig. 4 lines 22-25).
            let ext = self.zext(wr_addr, bid.addr_width() + 1);
            let (la_reg, la_out) = self.last_addr[b];
            let (ld_reg, ld_out) = self.last_data[b];
            let la_next = self.nl.mux(wr_en, ext, la_out);
            let ld_next = self.nl.mux(wr_en, wr_data, ld_out);
            self.nl.set_reg_next(la_reg, la_next);
            self.nl.set_reg_next(ld_reg, ld_next);

            // ---- Next-cycle read address (Fig. 4 line 29), generalized:
            // supplied whenever this cycle is not a mid-virtual-cycle
            // stall, using next-state values.
            let loop_conds_next: Vec<NodeId> = self
                .flat
                .loop_conds
                .iter()
                .map(|c| self.xlate(c, Ctx::Next))
                .collect::<Result<_, _>>()?;
            let while_done_next = self.nor_all(&loop_conds_next);
            let next_rd_addr = self.read_addr_mux(
                &read_sites[b],
                Ctx::Next,
                while_done_next,
                bid.addr_width(),
            )?;

            // rd_addr = (v && !v_done) ? hold current : next (Fig. 4 line 30).
            let not_vdone = self.nl.not_b(v_done);
            let stalled = self.nl.and_b(self.v_cur, not_vdone);
            let rd_addr = self.nl.mux(stalled, cur_rd_addr[b], next_rd_addr);
            self.nl
                .set_bram_ports(self.bram_rtl[b], rd_addr, wr_en, wr_addr, wr_data);
        }

        // ---- output_finished (Fig. 4 line 45) and ports. ----
        let output_finished = self.nl.and_b(not_v, self.f_cur);
        self.nl.output("input_ready", input_ready);
        self.nl.output("output_token", output_token);
        self.nl.output("output_valid", output_valid);
        self.nl.output("output_finished", output_finished);

        Ok(())
    }

    /// Priority multiplexer: first true guard wins; `default` otherwise.
    fn priority_mux(&mut self, guards: &[NodeId], values: &[NodeId], default: NodeId) -> NodeId {
        let mut acc = default;
        for k in (0..guards.len()).rev() {
            acc = self.nl.mux(guards[k], values[k], acc);
        }
        acc
    }

    /// Read-address mux for one BRAM in a given context.
    fn read_addr_mux(
        &mut self,
        sites: &[ReadSite],
        ctx: Ctx,
        while_done: NodeId,
        addr_width: Width,
    ) -> Result<NodeId, CompileError> {
        if sites.is_empty() {
            return Ok(self.nl.constant(0, addr_width));
        }
        let mut guards = Vec::new();
        let mut addrs = Vec::new();
        for s in sites {
            let g = self.op_guard(&s.guard, s.in_loop, ctx, while_done)?;
            let a = self.xlate(&s.addr, ctx)?;
            guards.push(g);
            addrs.push(self.resize(a, addr_width));
        }
        // Default to the last site's address so a two-site program
        // matches Fig. 4's `cond ? a : b` shape.
        let default = *addrs.last().expect("nonempty");
        Ok(self.priority_mux(&guards[..guards.len() - 1], &addrs[..addrs.len() - 1], default))
    }

    /// Translates an op guard: conjunction of guard expressions, plus
    /// `while_done` for operations outside loop bodies (§4).
    fn op_guard(
        &mut self,
        guard: &[E],
        in_loop: bool,
        ctx: Ctx,
        while_done: NodeId,
    ) -> Result<NodeId, CompileError> {
        let mut acc = if in_loop {
            None
        } else {
            Some(while_done)
        };
        for g in guard {
            let n = self.xlate(g, ctx)?;
            acc = Some(match acc {
                None => {
                    
                    self.nl.unary(UnaryOp::ReduceOr, n)
                }
                Some(a) => self.nl.and_b(a, n),
            });
        }
        Ok(match acc {
            Some(a) => a,
            None => self.nl.constant(1, 1),
        })
    }

    fn or_all(&mut self, nodes: &[NodeId]) -> NodeId {
        match nodes.split_first() {
            None => self.nl.constant(0, 1),
            Some((&first, rest)) => {
                let mut acc = self.nl.unary(UnaryOp::ReduceOr, first);
                for &n in rest {
                    acc = self.nl.or_b(acc, n);
                }
                acc
            }
        }
    }

    /// NOR of all nodes: `while_done` shape (constant 1 when empty).
    fn nor_all(&mut self, nodes: &[NodeId]) -> NodeId {
        if nodes.is_empty() {
            self.nl.constant(1, 1)
        } else {
            let any = self.or_all(nodes);
            self.nl.not_b(any)
        }
    }

    fn zext(&mut self, n: NodeId, w: Width) -> NodeId {
        let cur = self.nl.width(n);
        debug_assert!(w >= cur);
        if w == cur {
            n
        } else {
            let z = self.nl.constant(0, w - cur);
            self.nl.concat(z, n)
        }
    }

    fn resize(&mut self, n: NodeId, w: Width) -> NodeId {
        let cur = self.nl.width(n);
        if cur == w {
            n
        } else if cur > w {
            self.nl.slice(n, w - 1, 0)
        } else {
            self.zext(n, w)
        }
    }

    /// Expression translation with memoization on the shared subtree
    /// pointer.
    fn xlate(&mut self, e: &E, ctx: Ctx) -> Result<NodeId, CompileError> {
        let key = (e.node() as *const ExprNode as usize, ctx);
        if let Some(&n) = self.memo.get(&key) {
            return Ok(n);
        }
        let node = match e.node() {
            ExprNode::Const { value, width } => self.nl.constant(*value, *width),
            ExprNode::Input(_) => match ctx {
                Ctx::Cur => self.i_cur,
                Ctx::Next => self.i_next.expect("i_next built before next-ctx use"),
            },
            ExprNode::StreamFinished => match ctx {
                Ctx::Cur => self.f_cur,
                Ctx::Next => self.f_next.expect("f_next built before next-ctx use"),
            },
            ExprNode::Reg(id) => match ctx {
                Ctx::Cur => self.reg_cur[id.index()],
                Ctx::Next => {
                    self.reg_next[id.index()].expect("reg next built before next-ctx use")
                }
            },
            ExprNode::VecReg(id, idx) => {
                let idx_n = self.xlate(idx, ctx)?;
                let elems: Vec<NodeId> = match ctx {
                    Ctx::Cur => self.vec_cur[id.index()].clone(),
                    Ctx::Next => self.vec_next[id.index()].clone(),
                };
                // Linear select chain; element 0 is the default.
                let mut acc = elems[0];
                let iw = self.nl.width(idx_n);
                for (e_i, &val) in elems.iter().enumerate().skip(1) {
                    let c = self.nl.constant(
                        fleet_lang::mask(e_i as u64, iw),
                        iw,
                    );
                    let sel = self.nl.binary(BinOp::Eq, idx_n, c);
                    acc = self.nl.mux(sel, val, acc);
                }
                acc
            }
            ExprNode::BramRead(id, _) => match ctx {
                Ctx::Cur => self.bram_fwd[id.index()]
                    .expect("forwarded read data built before use"),
                Ctx::Next => {
                    return Err(CompileError::BramReadInCondition {
                        bram: self.spec.brams[id.index()].name.clone(),
                    })
                }
            },
            ExprNode::Unary(op, a) => {
                let an = self.xlate(a, ctx)?;
                self.nl.unary(*op, an)
            }
            ExprNode::Binary(op, a, b) => {
                let an = self.xlate(a, ctx)?;
                let bn = self.xlate(b, ctx)?;
                self.nl.binary(*op, an, bn)
            }
            ExprNode::Slice { arg, hi, lo } => {
                let an = self.xlate(arg, ctx)?;
                self.nl.slice(an, *hi, *lo)
            }
            ExprNode::Concat { hi, lo } => {
                let hn = self.xlate(hi, ctx)?;
                let ln = self.xlate(lo, ctx)?;
                self.nl.concat(hn, ln)
            }
            ExprNode::Mux { cond, on_true, on_false } => {
                let cn = self.xlate(cond, ctx)?;
                let tn = self.xlate(on_true, ctx)?;
                let fn_ = self.xlate(on_false, ctx)?;
                self.nl.mux(cn, tn, fn_)
            }
        };
        self.memo.insert(key, node);
        Ok(node)
    }
}
