//! Deterministic, seeded fault-injection plans.
//!
//! A [`FaultPlan`] describes *which* faults to inject (DRAM latency
//! spikes, correctable ECC bit flips, wedged processing units) and at
//! *what rate*, without ever holding mutable RNG state. Every fault
//! decision is a pure hash of `(seed, site kind, site index)`, so the
//! same plan produces the same faults no matter how many simulation
//! threads run, how the active worklist is sharded, or in what order
//! channels are evaluated. That purity is what lets the serving layer
//! promise byte-identical reports for a fixed fault seed at 1 and 8
//! sim threads.
//!
//! The crate is dependency-free on purpose: `fleet-axi` (which itself
//! has no dependencies) hooks fault decisions into its DRAM timing
//! model, and everything above it just forwards plans downward.
//!
//! Rates are expressed in parts-per-million (ppm) so a plan can stay
//! `Copy` (it rides inside `SystemConfig`, which is copied per run)
//! and integer-only (no float nondeterminism across platforms).

#![warn(missing_docs)]

/// Domain-separation salts: one per fault site kind, so a DRAM stall
/// decision at index `i` never correlates with an ECC decision at the
/// same index.
const KIND_DERIVE: u64 = 0xD1;
const KIND_DRAM: u64 = 0xD2;
const KIND_STALL: u64 = 0xD3;
const KIND_STALL_LEN: u64 = 0xD4;
const KIND_ECC: u64 = 0xD5;
const KIND_WEDGE: u64 = 0xD6;
const KIND_WEDGE_AT: u64 = 0xD7;

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixing function.
/// Public so downstream crates can build their own deterministic
/// decisions (e.g. benchmark workload shuffles) from the same plan.
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Hashes one fault site: `(seed, kind, index)` -> uniform u64.
fn site(seed: u64, kind: u64, index: u64) -> u64 {
    mix64(seed ^ mix64(kind.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ mix64(index)))
}

/// Draws a ppm decision for one site: true with probability
/// `ppm / 1_000_000` under the uniform hash.
fn hit(seed: u64, kind: u64, index: u64, ppm: u32) -> bool {
    ppm > 0 && site(seed, kind, index) % 1_000_000 < u64::from(ppm)
}

/// A seeded, rate-parameterised fault-injection plan.
///
/// The plan is inert when every rate is zero ([`FaultPlan::none`]);
/// inert plans are guaranteed not to perturb simulation at all — the
/// hooks compile to a `None` check — so a fault-free run is
/// bit-identical to a build without this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Root seed. Two plans with equal rates and different seeds fault
    /// different sites at the same long-run frequency.
    pub seed: u64,
    /// Per-read-request probability (ppm) of a DRAM latency spike /
    /// transient stall.
    pub dram_stall_ppm: u32,
    /// Maximum extra cycles one latency spike adds (actual magnitude is
    /// hashed uniformly in `1..=dram_stall_cycles`).
    pub dram_stall_cycles: u32,
    /// Per-delivered-beat probability (ppm) of a correctable single-bit
    /// ECC flip.
    pub ecc_flip_ppm: u32,
    /// Per-stream probability (ppm) that its processing unit wedges
    /// (permanently stops making progress) partway through the stream.
    pub wedge_ppm: u32,
    /// Upper bound on the number of input tokens a wedging unit
    /// consumes before it stops (actual point is hashed uniformly in
    /// `1..=wedge_after_tokens`).
    pub wedge_after_tokens: u32,
}

impl FaultPlan {
    /// The inert plan: no faults, ever.
    pub const fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            dram_stall_ppm: 0,
            dram_stall_cycles: 0,
            ecc_flip_ppm: 0,
            wedge_ppm: 0,
            wedge_after_tokens: 0,
        }
    }

    /// An inert plan carrying a seed; enable fault classes with the
    /// builder methods.
    pub const fn with_seed(seed: u64) -> FaultPlan {
        FaultPlan { seed, ..FaultPlan::none() }
    }

    /// Enables DRAM latency spikes: each read request stalls with
    /// probability `ppm`, for `1..=max_cycles` extra cycles.
    pub const fn dram_stalls(mut self, ppm: u32, max_cycles: u32) -> FaultPlan {
        self.dram_stall_ppm = ppm;
        self.dram_stall_cycles = max_cycles;
        self
    }

    /// Enables correctable ECC bit flips: each delivered read beat is
    /// corrupted (then corrected by the modelled SEC-DED decode) with
    /// probability `ppm`.
    pub const fn ecc_flips(mut self, ppm: u32) -> FaultPlan {
        self.ecc_flip_ppm = ppm;
        self
    }

    /// Enables PU wedges: each stream's unit wedges with probability
    /// `ppm`, after consuming `1..=after_tokens` input tokens.
    pub const fn wedges(mut self, ppm: u32, after_tokens: u32) -> FaultPlan {
        self.wedge_ppm = ppm;
        self.wedge_after_tokens = after_tokens;
        self
    }

    /// True when no fault class is enabled; hooks skip entirely.
    pub const fn is_none(&self) -> bool {
        self.dram_stall_ppm == 0 && self.ecc_flip_ppm == 0 && self.wedge_ppm == 0
    }

    /// Derives an independent child plan (same rates, decorrelated
    /// seed) for a sub-domain — e.g. the host derives one plan per
    /// batch so two batches never fault identical sites.
    pub fn derive(&self, salt: u64) -> FaultPlan {
        FaultPlan { seed: site(self.seed, KIND_DERIVE, salt), ..*self }
    }

    /// The DRAM fault decisions for one memory channel.
    pub fn dram(&self, channel: u64) -> DramFaults {
        DramFaults {
            seed: site(self.seed, KIND_DRAM, channel),
            stall_ppm: self.dram_stall_ppm,
            stall_cycles: self.dram_stall_cycles,
            ecc_ppm: self.ecc_flip_ppm,
        }
    }

    /// Whether (and after how many consumed tokens) the unit serving
    /// stream `stream` wedges. Keyed by submission-order stream index,
    /// so the decision is independent of how streams are partitioned
    /// onto channels.
    pub fn wedge_threshold(&self, stream: u64) -> Option<u64> {
        if !hit(self.seed, KIND_WEDGE, stream, self.wedge_ppm) {
            return None;
        }
        let bound = u64::from(self.wedge_after_tokens.max(1));
        Some(1 + site(self.seed, KIND_WEDGE_AT, stream) % bound)
    }
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::none()
    }
}

/// Per-channel DRAM fault decisions, derived from a [`FaultPlan`].
///
/// Decisions are keyed by deterministic per-channel counters (read
/// request index, delivered beat index), which advance identically at
/// every sim-thread count, so injection sites are stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramFaults {
    seed: u64,
    stall_ppm: u32,
    stall_cycles: u32,
    ecc_ppm: u32,
}

impl DramFaults {
    /// True when this channel injects nothing.
    pub const fn is_none(&self) -> bool {
        self.stall_ppm == 0 && self.ecc_ppm == 0
    }

    /// Extra latency cycles for the channel's `req`-th read request
    /// (0 = no spike).
    pub fn read_stall(&self, req: u64) -> u64 {
        if !hit(self.seed, KIND_STALL, req, self.stall_ppm) {
            return 0;
        }
        let bound = u64::from(self.stall_cycles.max(1));
        1 + site(self.seed, KIND_STALL_LEN, req) % bound
    }

    /// Bit position (within a 512-bit beat) flipped on the channel's
    /// `beat`-th delivered read beat, or `None` for a clean beat.
    pub fn ecc_flip(&self, beat: u64) -> Option<u32> {
        if !hit(self.seed, KIND_ECC, beat, self.ecc_ppm) {
            return None;
        }
        Some((site(self.seed, KIND_ECC ^ 0xFF, beat) % 512) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_never_faults() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        let d = p.dram(0);
        assert!(d.is_none());
        for i in 0..10_000 {
            assert_eq!(d.read_stall(i), 0);
            assert_eq!(d.ecc_flip(i), None);
            assert_eq!(p.wedge_threshold(i), None);
        }
        // A seeded plan with zero rates is just as inert.
        let p = FaultPlan::with_seed(0xDEADBEEF);
        assert!(p.is_none());
        assert_eq!(p.dram(3).read_stall(7), 0);
    }

    #[test]
    fn decisions_are_pure_functions_of_the_site() {
        let p = FaultPlan::with_seed(42).dram_stalls(50_000, 100).ecc_flips(20_000).wedges(100_000, 64);
        let d1 = p.dram(2);
        let d2 = p.dram(2);
        for i in 0..5_000 {
            assert_eq!(d1.read_stall(i), d2.read_stall(i));
            assert_eq!(d1.ecc_flip(i), d2.ecc_flip(i));
            assert_eq!(p.wedge_threshold(i), p.wedge_threshold(i));
        }
    }

    #[test]
    fn rates_are_roughly_honored() {
        let p = FaultPlan::with_seed(7).dram_stalls(100_000, 50).ecc_flips(10_000);
        let d = p.dram(0);
        let n = 100_000u64;
        let stalls = (0..n).filter(|&i| d.read_stall(i) > 0).count();
        // 10% +- generous slack.
        assert!((8_000..12_000).contains(&stalls), "stalls = {stalls}");
        let flips = (0..n).filter(|&i| d.ecc_flip(i).is_some()).count();
        // 1% +- generous slack.
        assert!((700..1_300).contains(&flips), "flips = {flips}");
        for i in 0..n {
            let s = d.read_stall(i);
            assert!(s <= 50);
            if let Some(bit) = d.ecc_flip(i) {
                assert!(bit < 512);
            }
        }
    }

    #[test]
    fn channels_and_derived_plans_are_decorrelated() {
        let p = FaultPlan::with_seed(9).dram_stalls(500_000, 20);
        let a = p.dram(0);
        let b = p.dram(1);
        let same = (0..1_000).filter(|&i| a.read_stall(i) == b.read_stall(i)).count();
        assert!(same < 900, "channels correlate: {same}/1000 equal");

        let c1 = p.derive(1);
        let c2 = p.derive(2);
        assert_ne!(c1.seed, c2.seed);
        assert_ne!(c1.seed, p.seed);
        assert_eq!(c1.dram_stall_ppm, p.dram_stall_ppm);
    }

    #[test]
    fn wedge_thresholds_fall_in_bounds() {
        let p = FaultPlan::with_seed(3).wedges(1_000_000, 16);
        for s in 0..1_000 {
            let t = p.wedge_threshold(s).expect("ppm=1e6 always wedges");
            assert!((1..=16).contains(&t), "threshold {t} out of range");
        }
        // Sub-certain rates wedge only some streams.
        let p = FaultPlan::with_seed(3).wedges(250_000, 16);
        let wedged = (0..10_000).filter(|&s| p.wedge_threshold(s).is_some()).count();
        assert!((2_000..3_000).contains(&wedged), "wedged = {wedged}");
    }
}
