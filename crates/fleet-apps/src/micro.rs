//! Micro processing units used by benchmarks, examples, and the memory
//! experiments: the drop-everything unit that isolates the input
//! controller (§7.3), the identity unit that exercises input+output
//! symmetrically, and a few other one-liners.

use fleet_lang::{lit, UnitBuilder, UnitSpec};

/// Consumes every token and emits nothing — the paper's §7.3 memory
/// benchmark unit ("a simple processing unit that drops all of the input
/// tokens and produces no output").
pub fn drop_all() -> UnitSpec {
    let mut u = UnitBuilder::new("DropAll", 8, 8);
    let acc = u.reg("acc", 8, 0);
    let inp = u.input();
    u.set(acc, acc ^ inp);
    u.build().expect("drop-all unit is valid")
}

/// Emits every token unchanged: output volume equals input volume, the
/// §7.3 combined input+output benchmark.
pub fn identity() -> UnitSpec {
    let mut u = UnitBuilder::new("Identity", 8, 8);
    let inp = u.input();
    let nf = u.stream_finished().not_b();
    u.if_(nf, |u| u.emit(inp.clone()));
    u.build().expect("identity unit is valid")
}

/// Sums 32-bit integers and emits the total on stream end — the §7.4
/// HLS comparison workload.
pub fn sum32() -> UnitSpec {
    let mut u = UnitBuilder::new("Sum32", 32, 32);
    let acc = u.reg("acc", 32, 0);
    let inp = u.input();
    let fin = u.stream_finished();
    u.if_else(
        fin,
        |u| u.emit(acc.e()),
        |u| u.set(acc, acc + inp.clone()),
    );
    u.build().expect("sum unit is valid")
}

/// Uppercases ASCII — the quickstart unit.
pub fn upper() -> UnitSpec {
    let mut u = UnitBuilder::new("Upper", 8, 8);
    let inp = u.input();
    let nf = u.stream_finished().not_b();
    let is_lower = inp.ge_e(b'a' as u64).and_b(inp.le_e(b'z' as u64));
    u.if_(nf, |u| {
        u.emit(is_lower.mux(inp.clone() - 32u64, inp.clone()));
    });
    u.build().expect("upper unit is valid")
}

/// Emits only tokens strictly below a threshold carried in the first
/// token — a filter with stream-dependent selectivity (used by the
/// output-addressing experiment).
pub fn threshold_filter() -> UnitSpec {
    let mut u = UnitBuilder::new("Filter", 8, 8);
    let thr = u.reg("threshold", 8, 0);
    let loaded = u.reg("loaded", 1, 0);
    let inp = u.input();
    let nf = u.stream_finished().not_b();
    u.if_(nf, |u| {
        u.if_else(
            loaded.eq_e(0u64),
            |u| {
                u.set(thr, inp.clone());
                u.set(loaded, lit(1, 1));
            },
            |u| {
                u.if_(inp.lt_e(thr.e()), |u| u.emit(inp.clone()));
            },
        );
    });
    u.build().expect("filter unit is valid")
}

/// The Figure 3 frequency-counting unit, exactly as in the paper.
pub fn block_frequencies(block: u64) -> UnitSpec {
    let mut u = UnitBuilder::new("BlockFrequencies", 8, 8);
    let item_counter = u.reg("itemCounter", 7, 0);
    let frequencies = u.bram("frequencies", 256, 8);
    let idx = u.reg("frequenciesIdx", 9, 0);
    let input = u.input();
    u.if_(item_counter.eq_e(block), |u| {
        u.while_(idx.lt_e(256u64), |u| {
            u.emit(frequencies.read(idx));
            u.write(frequencies, idx, lit(0, 8));
            u.set(idx, idx + 1u64);
        });
        u.set(idx, lit(0, 9));
    });
    u.write(frequencies, input.clone(), frequencies.read(input) + 1u64);
    u.set(
        item_counter,
        item_counter.eq_e(block).mux(lit(1, 7), item_counter + 1u64),
    );
    u.build().expect("figure 3 unit is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleet_isim::Interpreter;

    #[test]
    fn micro_units_validate_and_run() {
        for spec in [drop_all(), identity(), upper(), threshold_filter()] {
            let tokens: Vec<u64> = (0..100).map(|x| x % 256).collect();
            Interpreter::run_tokens(&spec, &tokens)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        }
    }

    #[test]
    fn sum32_sums() {
        let out = Interpreter::run_tokens(&sum32(), &[5, 10, 1_000_000]).unwrap();
        assert_eq!(out.tokens, vec![1_000_015]);
    }

    #[test]
    fn upper_uppercases() {
        let tokens: Vec<u64> = b"aZ9z".iter().map(|&b| b as u64).collect();
        let out = Interpreter::run_tokens(&upper(), &tokens).unwrap();
        let bytes: Vec<u8> = out.tokens.iter().map(|&t| t as u8).collect();
        assert_eq!(&bytes, b"AZ9Z");
    }

    #[test]
    fn filter_respects_per_stream_threshold() {
        let mut tokens = vec![100u64];
        tokens.extend([5, 150, 99, 200, 0]);
        let out = Interpreter::run_tokens(&threshold_filter(), &tokens).unwrap();
        assert_eq!(out.tokens, vec![5, 99, 0]);
    }

    #[test]
    fn figure3_histogram_counts() {
        let tokens: Vec<u64> = vec![7; 100];
        let out = Interpreter::run_tokens(&block_frequencies(100), &tokens).unwrap();
        assert_eq!(out.tokens.len(), 256);
        assert_eq!(out.tokens[7], 100);
    }
}
