//! Regular-expression matching (§7.1).
//!
//! A compile-time regex is turned into a circuit following the
//! Sidhu-Prasanna construction the paper cites: the Glushkov NFA of the
//! pattern, one single-bit register per character position, transitions
//! as pure boolean logic — no BRAM at all. Whenever the accept signal
//! fires the unit emits the index of the current character; software can
//! reconstruct full matches from match-end positions.
//!
//! The same Glushkov automaton drives the golden software matcher, so
//! the hardware and reference cannot diverge on construction details.

use fleet_lang::{lit, E, UnitBuilder, UnitSpec};

/// A character class: set of inclusive byte ranges, possibly negated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CharClass {
    /// Inclusive `(lo, hi)` ranges.
    pub ranges: Vec<(u8, u8)>,
    /// Match any byte *not* in the ranges.
    pub negated: bool,
}

impl CharClass {
    /// Single character.
    pub fn single(c: u8) -> CharClass {
        CharClass { ranges: vec![(c, c)], negated: false }
    }

    /// `.` — any byte except newline.
    pub fn dot() -> CharClass {
        CharClass { ranges: vec![(b'\n', b'\n')], negated: true }
    }

    /// Whether the class matches `c`.
    pub fn matches(&self, c: u8) -> bool {
        let inside = self.ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi);
        inside != self.negated
    }
}

/// Regex AST after desugaring (`+`, `?`, `{m,n}` are expanded).
#[derive(Debug, Clone)]
pub enum Ast {
    /// Empty string.
    Empty,
    /// One character class occurrence (a Glushkov position).
    Class(CharClass),
    /// Concatenation.
    Concat(Box<Ast>, Box<Ast>),
    /// Alternation.
    Alt(Box<Ast>, Box<Ast>),
    /// Kleene star.
    Star(Box<Ast>),
}

/// Parses a regex supporting literals, `.`, `[...]` classes (with ranges
/// and leading `^` negation), `|`, `*`, `+`, `?`, `{m,n}`, `(...)`, and
/// `\` escapes.
///
/// # Errors
///
/// Returns a description of the first syntax error.
pub fn parse(pattern: &str) -> Result<Ast, String> {
    let bytes = pattern.as_bytes();
    let mut pos = 0usize;
    let ast = parse_alt(bytes, &mut pos)?;
    if pos != bytes.len() {
        return Err(format!("unexpected character at offset {pos}"));
    }
    Ok(ast)
}

fn parse_alt(b: &[u8], pos: &mut usize) -> Result<Ast, String> {
    let mut lhs = parse_concat(b, pos)?;
    while *pos < b.len() && b[*pos] == b'|' {
        *pos += 1;
        let rhs = parse_concat(b, pos)?;
        lhs = Ast::Alt(Box::new(lhs), Box::new(rhs));
    }
    Ok(lhs)
}

fn parse_concat(b: &[u8], pos: &mut usize) -> Result<Ast, String> {
    let mut parts: Vec<Ast> = Vec::new();
    while *pos < b.len() && b[*pos] != b'|' && b[*pos] != b')' {
        parts.push(parse_repeat(b, pos)?);
    }
    Ok(parts
        .into_iter()
        .reduce(|a, c| Ast::Concat(Box::new(a), Box::new(c)))
        .unwrap_or(Ast::Empty))
}

fn parse_repeat(b: &[u8], pos: &mut usize) -> Result<Ast, String> {
    let atom = parse_atom(b, pos)?;
    let mut ast = atom;
    loop {
        if *pos >= b.len() {
            return Ok(ast);
        }
        match b[*pos] {
            b'*' => {
                *pos += 1;
                ast = Ast::Star(Box::new(ast));
            }
            b'+' => {
                *pos += 1;
                // a+ = a a*
                ast = Ast::Concat(Box::new(ast.clone()), Box::new(Ast::Star(Box::new(ast))));
            }
            b'?' => {
                *pos += 1;
                ast = Ast::Alt(Box::new(ast), Box::new(Ast::Empty));
            }
            b'{' => {
                let close = b[*pos..]
                    .iter()
                    .position(|&c| c == b'}')
                    .ok_or("unterminated {m,n}")?
                    + *pos;
                let body = std::str::from_utf8(&b[*pos + 1..close]).map_err(|_| "bad {m,n}")?;
                let (m, n) = match body.split_once(',') {
                    Some((m, "")) => {
                        let m: usize = m.parse().map_err(|_| "bad {m,}")?;
                        (m, usize::MAX)
                    }
                    Some((m, n)) => (
                        m.parse().map_err(|_| "bad {m,n}")?,
                        n.parse().map_err(|_| "bad {m,n}")?,
                    ),
                    None => {
                        let m: usize = body.parse().map_err(|_| "bad {m}")?;
                        (m, m)
                    }
                };
                *pos = close + 1;
                ast = expand_repeat(&ast, m, n)?;
            }
            _ => return Ok(ast),
        }
    }
}

fn expand_repeat(ast: &Ast, m: usize, n: usize) -> Result<Ast, String> {
    if n != usize::MAX && n < m {
        return Err("{m,n} with n < m".to_string());
    }
    // a{m,n} = a^m (a?)^(n-m);  a{m,} = a^m a*
    let mut parts: Vec<Ast> = Vec::new();
    for _ in 0..m {
        parts.push(ast.clone());
    }
    if n == usize::MAX {
        parts.push(Ast::Star(Box::new(ast.clone())));
    } else {
        for _ in 0..n - m {
            parts.push(Ast::Alt(Box::new(ast.clone()), Box::new(Ast::Empty)));
        }
    }
    Ok(parts
        .into_iter()
        .reduce(|a, c| Ast::Concat(Box::new(a), Box::new(c)))
        .unwrap_or(Ast::Empty))
}

fn parse_atom(b: &[u8], pos: &mut usize) -> Result<Ast, String> {
    if *pos >= b.len() {
        return Ok(Ast::Empty);
    }
    match b[*pos] {
        b'(' => {
            *pos += 1;
            let inner = parse_alt(b, pos)?;
            if *pos >= b.len() || b[*pos] != b')' {
                return Err("unterminated group".to_string());
            }
            *pos += 1;
            Ok(inner)
        }
        b'[' => {
            *pos += 1;
            let mut negated = false;
            if *pos < b.len() && b[*pos] == b'^' {
                negated = true;
                *pos += 1;
            }
            let mut ranges = Vec::new();
            while *pos < b.len() && b[*pos] != b']' {
                let lo = if b[*pos] == b'\\' {
                    *pos += 1;
                    b[*pos]
                } else {
                    b[*pos]
                };
                *pos += 1;
                if *pos + 1 < b.len() && b[*pos] == b'-' && b[*pos + 1] != b']' {
                    let hi = b[*pos + 1];
                    *pos += 2;
                    ranges.push((lo, hi));
                } else {
                    ranges.push((lo, lo));
                }
            }
            if *pos >= b.len() {
                return Err("unterminated class".to_string());
            }
            *pos += 1; // ']'
            Ok(Ast::Class(CharClass { ranges, negated }))
        }
        b'.' => {
            *pos += 1;
            Ok(Ast::Class(CharClass::dot()))
        }
        b'\\' => {
            *pos += 1;
            if *pos >= b.len() {
                return Err("dangling escape".to_string());
            }
            let c = b[*pos];
            *pos += 1;
            Ok(Ast::Class(CharClass::single(c)))
        }
        b'*' | b'+' | b'?' | b'{' => Err("quantifier with nothing to repeat".to_string()),
        c => {
            *pos += 1;
            Ok(Ast::Class(CharClass::single(c)))
        }
    }
}

/// The Glushkov NFA of a pattern: one state per character-class
/// occurrence, no epsilon transitions.
#[derive(Debug, Clone)]
pub struct Nfa {
    /// Character class of each position.
    pub classes: Vec<CharClass>,
    /// Positions reachable as the first character.
    pub first: Vec<usize>,
    /// Accepting positions.
    pub last: Vec<usize>,
    /// `follow[q]` = positions reachable right after position `q`.
    pub follow: Vec<Vec<usize>>,
    /// Whether the empty string matches.
    pub nullable: bool,
}

struct GInfo {
    nullable: bool,
    first: Vec<usize>,
    last: Vec<usize>,
}

fn glushkov(
    ast: &Ast,
    classes: &mut Vec<CharClass>,
    follow: &mut Vec<Vec<usize>>,
) -> GInfo {
    match ast {
        Ast::Empty => GInfo { nullable: true, first: vec![], last: vec![] },
        Ast::Class(c) => {
            let p = classes.len();
            classes.push(c.clone());
            follow.push(Vec::new());
            GInfo { nullable: false, first: vec![p], last: vec![p] }
        }
        Ast::Concat(a, b) => {
            let ia = glushkov(a, classes, follow);
            let ib = glushkov(b, classes, follow);
            for &q in &ia.last {
                for &p in &ib.first {
                    if !follow[q].contains(&p) {
                        follow[q].push(p);
                    }
                }
            }
            let mut first = ia.first.clone();
            if ia.nullable {
                first.extend(ib.first.iter().copied());
            }
            let mut last = ib.last.clone();
            if ib.nullable {
                last.extend(ia.last.iter().copied());
            }
            GInfo { nullable: ia.nullable && ib.nullable, first, last }
        }
        Ast::Alt(a, b) => {
            let ia = glushkov(a, classes, follow);
            let ib = glushkov(b, classes, follow);
            let mut first = ia.first;
            first.extend(ib.first);
            let mut last = ia.last;
            last.extend(ib.last);
            GInfo { nullable: ia.nullable || ib.nullable, first, last }
        }
        Ast::Star(a) => {
            let ia = glushkov(a, classes, follow);
            for &q in &ia.last {
                for &p in &ia.first {
                    if !follow[q].contains(&p) {
                        follow[q].push(p);
                    }
                }
            }
            GInfo { nullable: true, first: ia.first, last: ia.last }
        }
    }
}

impl Nfa {
    /// Builds the Glushkov NFA of `pattern`.
    ///
    /// # Errors
    ///
    /// Propagates parse errors.
    pub fn build(pattern: &str) -> Result<Nfa, String> {
        let ast = parse(pattern)?;
        let mut classes = Vec::new();
        let mut follow = Vec::new();
        let info = glushkov(&ast, &mut classes, &mut follow);
        Ok(Nfa {
            classes,
            first: info.first,
            last: info.last,
            follow,
            nullable: info.nullable,
        })
    }

    /// Software simulation: returns the end indices (exclusive) of all
    /// *unanchored* matches in `text` (match-end semantics, as the
    /// hardware reports).
    pub fn match_ends(&self, text: &[u8]) -> Vec<u32> {
        let mut active = vec![false; self.classes.len()];
        let mut out = Vec::new();
        for (i, &c) in text.iter().enumerate() {
            let mut next = vec![false; self.classes.len()];
            for (p, slot) in next.iter_mut().enumerate() {
                if !self.classes[p].matches(c) {
                    continue;
                }
                // Unanchored: a new attempt can start at every character.
                *slot = self.first.contains(&p)
                    || (0..self.classes.len())
                        .any(|q| active[q] && self.follow[q].contains(&p));
            }
            active = next;
            if self.last.iter().any(|&p| active[p]) {
                out.push(i as u32 + 1);
            }
        }
        out
    }
}

/// Class-match expression for a byte-wide input.
fn class_expr(input: &E, class: &CharClass) -> E {
    let mut inside: E = lit(0, 1);
    for &(lo, hi) in &class.ranges {
        let r = if lo == hi {
            input.eq_e(lo as u64)
        } else {
            input.ge_e(lo as u64).and_b(input.le_e(hi as u64))
        };
        inside = inside.or_b(r);
    }
    if class.negated {
        inside.not_b()
    } else {
        inside
    }
}

/// Builds the regex-matching processing unit (8-bit in, 32-bit out) for
/// `pattern`.
///
/// # Panics
///
/// Panics on a regex syntax error (patterns are compile-time constants).
pub fn regex_unit(pattern: &str) -> UnitSpec {
    let nfa = Nfa::build(pattern).expect("valid pattern");
    let mut u = UnitBuilder::new("Regex", 8, 32);
    let input = u.input();
    let nf = u.stream_finished().not_b();
    let pos = u.reg("pos", 32, 0);

    let states: Vec<_> = (0..nfa.classes.len())
        .map(|p| u.reg(format!("s{p}"), 1, 0))
        .collect();

    u.if_(nf, |u| {
        let matches: Vec<E> =
            nfa.classes.iter().map(|c| class_expr(&input, c)).collect();
        let mut accept: E = lit(0, 1);
        for p in 0..nfa.classes.len() {
            // Sources: start-anywhere (unanchored) plus every q with
            // p ∈ follow(q).
            let mut src: E = if nfa.first.contains(&p) { lit(1, 1) } else { lit(0, 1) };
            for (sq, follow) in states.iter().zip(&nfa.follow) {
                if follow.contains(&p) {
                    src = src.or_b(sq.e());
                }
            }
            let next = src.and_b(matches[p].clone());
            u.set(states[p], next.clone());
            if nfa.last.contains(&p) {
                accept = accept.or_b(next);
            }
        }
        u.if_(accept, |u| u.emit(pos.e() + 1u64));
        u.set(pos, pos + 1u64);
    });

    u.build().expect("regex unit is valid")
}

/// Builds a *multi-pattern* matching unit: one circuit matching all
/// `patterns` simultaneously (their NFAs run side by side), emitting a
/// 32-bit token of `(pattern_index << 28) | match_end` — the multi-rule
/// string-search setup the paper's introduction motivates, at zero extra
/// cycles per token.
///
/// If several patterns match at the same character, the lowest pattern
/// index wins (one emit per virtual cycle).
///
/// # Panics
///
/// Panics on a regex syntax error or more than 16 patterns.
pub fn multi_regex_unit(patterns: &[&str]) -> UnitSpec {
    assert!(!patterns.is_empty() && patterns.len() <= 16, "1..=16 patterns");
    let nfas: Vec<Nfa> = patterns
        .iter()
        .map(|p| Nfa::build(p).expect("valid pattern"))
        .collect();
    let mut u = UnitBuilder::new("MultiRegex", 8, 32);
    let input = u.input();
    let nf = u.stream_finished().not_b();
    let pos = u.reg("pos", 28, 0);

    // Accept signal per pattern, each with its own state registers.
    let mut accepts: Vec<E> = Vec::new();
    for (pi, nfa) in nfas.iter().enumerate() {
        let states: Vec<_> = (0..nfa.classes.len())
            .map(|p| u.reg(format!("p{pi}s{p}"), 1, 0))
            .collect();
        let mut accept: E = lit(0, 1);
        let matches: Vec<E> = nfa.classes.iter().map(|c| class_expr(&input, c)).collect();
        let mut nexts: Vec<(usize, E)> = Vec::new();
        for (p, m) in matches.iter().enumerate() {
            let mut src: E = if nfa.first.contains(&p) { lit(1, 1) } else { lit(0, 1) };
            for (sq, follow) in states.iter().zip(&nfa.follow) {
                if follow.contains(&p) {
                    src = src.or_b(sq.e());
                }
            }
            let next = src.and_b(m.clone());
            nexts.push((p, next.clone()));
            if nfa.last.contains(&p) {
                accept = accept.or_b(next);
            }
        }
        // Record the state updates under the processing guard.
        let states2 = states.clone();
        u.if_(nf.clone(), move |u| {
            for (p, next) in nexts {
                u.set(states2[p], next);
            }
        });
        accepts.push(accept);
    }

    // Single emit site: priority-select the lowest matching pattern.
    let mut any: E = lit(0, 1);
    let mut tag: E = lit(0, 4);
    for (pi, a) in accepts.iter().enumerate().rev() {
        tag = a.mux(lit(pi as u64, 4), tag);
        any = any.or_b(a.clone());
    }
    let token = tag.concat(pos.e() + 1u64);
    u.if_(nf.clone().and_b(any), move |u| u.emit(token));
    u.if_(nf, |u| u.set(pos, pos + 1u64));

    u.build().expect("multi-regex unit is valid")
}

/// Reference matcher for [`multi_regex_unit`]: `(index<<28)|end` tokens
/// as little-endian `u32`s, lowest pattern index winning ties.
pub fn multi_golden(patterns: &[&str], input: &[u8]) -> Vec<u8> {
    let nfas: Vec<Nfa> = patterns
        .iter()
        .map(|p| Nfa::build(p).expect("valid pattern"))
        .collect();
    let ends: Vec<Vec<u32>> = nfas.iter().map(|n| n.match_ends(input)).collect();
    let mut out = Vec::new();
    for e in 1..=input.len() as u32 {
        if let Some(pi) = ends.iter().position(|v| v.contains(&e)) {
            let token = ((pi as u32) << 28) | (e & 0x0FFF_FFFF);
            out.extend_from_slice(&token.to_le_bytes());
        }
    }
    out
}

/// The email pattern used by the paper's regex benchmark suite.
pub const EMAIL_PATTERN: &str = "[a-zA-Z0-9_.+-]+@[a-zA-Z0-9-]+\\.[a-zA-Z0-9-]{2,4}";

/// Reference matcher over a byte stream: match-end indices as
/// little-endian `u32`s.
pub fn golden(pattern: &str, input: &[u8]) -> Vec<u8> {
    let nfa = Nfa::build(pattern).expect("valid pattern");
    let mut out = Vec::new();
    for e in nfa.match_ends(input) {
        out.extend_from_slice(&e.to_le_bytes());
    }
    out
}

/// Generates log-like text with emails sprinkled in.
pub fn gen_stream(seed: u64, approx_bytes: usize) -> Vec<u8> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let words = [
        "error", "warn", "request", "served", "from", "cache", "timeout", "user", "page",
        "login", "at", "2026-07-06",
    ];
    let names = ["alice", "bob.smith", "carol99", "dave_x", "eve+test"];
    let hosts = ["example.com", "mail.io", "corp.net", "uni.edu"];
    let mut out = Vec::with_capacity(approx_bytes);
    while out.len() < approx_bytes {
        for _ in 0..rng.gen_range(5..15) {
            out.extend_from_slice(words[rng.gen_range(0..words.len())].as_bytes());
            out.push(b' ');
        }
        if rng.gen_bool(0.4) {
            out.extend_from_slice(names[rng.gen_range(0..names.len())].as_bytes());
            out.push(b'@');
            out.extend_from_slice(hosts[rng.gen_range(0..hosts.len())].as_bytes());
            out.push(b' ');
        }
        out.push(b'\n');
    }
    out.truncate(approx_bytes);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleet_isim::{bytes_to_tokens, tokens_to_bytes, Interpreter};

    fn run_unit(pattern: &str, text: &[u8]) -> Vec<u8> {
        let spec = regex_unit(pattern);
        let tokens = bytes_to_tokens(text, 8).unwrap();
        let out = Interpreter::run_tokens(&spec, &tokens).unwrap();
        tokens_to_bytes(&out.tokens, 32)
    }

    #[test]
    fn literal_match() {
        assert_eq!(run_unit("abc", b"xxabcxxabc"), golden("abc", b"xxabcxxabc"));
        assert!(!golden("abc", b"xxabcxx").is_empty());
    }

    #[test]
    fn alternation_and_star() {
        let pat = "a(b|c)*d";
        for text in [&b"abcbcbd"[..], b"ad", b"abd", b"acd", b"axd", b"aabbccdd"] {
            assert_eq!(run_unit(pat, text), golden(pat, text), "text {text:?}");
        }
    }

    #[test]
    fn plus_question_and_counted() {
        let pat = "ab+c?d{2,3}";
        for text in [&b"abdd"[..], b"abbbcddd", b"abcd", b"abcdddd", b"add"] {
            assert_eq!(run_unit(pat, text), golden(pat, text), "text {text:?}");
        }
    }

    #[test]
    fn classes_and_negation() {
        let pat = "[a-c]+[^0-9]x";
        for text in [&b"abc!x"[..], b"a1x", b"cc x", b"abcx"] {
            assert_eq!(run_unit(pat, text), golden(pat, text), "text {text:?}");
        }
    }

    #[test]
    fn email_pattern_on_synthetic_logs() {
        let text = gen_stream(42, 4000);
        let got = run_unit(EMAIL_PATTERN, &text);
        let expect = golden(EMAIL_PATTERN, &text);
        assert_eq!(got, expect);
        assert!(
            expect.len() >= 8,
            "workload should contain several emails, got {} matches",
            expect.len() / 4
        );
    }

    #[test]
    fn one_virtual_cycle_per_character() {
        let spec = regex_unit(EMAIL_PATTERN);
        let text = gen_stream(1, 1000);
        let tokens = bytes_to_tokens(&text, 8).unwrap();
        let out = Interpreter::run_tokens(&spec, &tokens).unwrap();
        assert_eq!(out.vcycles, tokens.len() as u64 + 1);
    }

    #[test]
    fn nested_stars_and_groups() {
        let pat = "x(y(z|w)*)*q";
        for text in [&b"xq"[..], b"xyq", b"xyzq", b"xyzwzyq", b"xyzwq", b"xzq", b"xyzw"] {
            assert_eq!(run_unit(pat, text), golden(pat, text), "text {text:?}");
        }
    }

    #[test]
    fn star_of_alternation() {
        let pat = "(a|b)*c";
        for text in [&b"c"[..], b"abababc", b"bbbac", b"ab", b"cc"] {
            assert_eq!(run_unit(pat, text), golden(pat, text), "text {text:?}");
        }
    }

    #[test]
    fn overlapping_matches_report_every_end() {
        // "aa" in "aaaa" ends at 2, 3, 4.
        assert_eq!(golden("aa", b"aaaa"), {
            let mut v = Vec::new();
            for e in [2u32, 3, 4] {
                v.extend_from_slice(&e.to_le_bytes());
            }
            v
        });
        assert_eq!(run_unit("aa", b"aaaa"), golden("aa", b"aaaa"));
    }

    #[test]
    fn class_range_boundaries() {
        let pat = "[b-d]+";
        for text in [&b"abcde"[..], b"aaee", b"bd"] {
            assert_eq!(run_unit(pat, text), golden(pat, text), "text {text:?}");
        }
    }

    #[test]
    fn multi_pattern_unit_matches_reference() {
        let patterns = ["abc", "[0-9]+x", "q(r|s)*t"];
        let spec = multi_regex_unit(&patterns);
        let text = b"zzabc123x__qrsrt_abc9x";
        let tokens: Vec<u64> = text.iter().map(|&b| b as u64).collect();
        let out = fleet_isim::Interpreter::run_tokens(&spec, &tokens).unwrap();
        let got = fleet_isim::tokens_to_bytes(&out.tokens, 32);
        let expect = multi_golden(&patterns, text);
        assert_eq!(got, expect);
        assert!(!expect.is_empty());
    }

    #[test]
    fn multi_pattern_lowest_index_wins_ties() {
        // Both patterns match at the same end; index 0 must win.
        let patterns = ["ab", "b"];
        let spec = multi_regex_unit(&patterns);
        let tokens: Vec<u64> = b"ab".iter().map(|&b| b as u64).collect();
        let out = fleet_isim::Interpreter::run_tokens(&spec, &tokens).unwrap();
        // End index 2, pattern 0.
        assert_eq!(out.tokens, vec![2]);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("a(b").is_err());
        assert!(parse("*a").is_err());
        assert!(parse("a{3,1}").is_err());
        assert!(parse("[ab").is_err());
    }
}
