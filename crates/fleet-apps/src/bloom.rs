//! Bloom-filter construction (§7.1).
//!
//! The unit consumes blocks of 32-bit items and emits a Bloom filter
//! bitfield per block. Each item is hashed with `K` multiplicative hash
//! functions; because a BRAM supports one write per virtual cycle, the
//! `K` bit-sets run in a `while` loop — `K+1` virtual cycles per item,
//! the paper's "high computational intensity per virtual cycle" case.
//! At the end of a block the bitfield is emitted byte by byte (and
//! cleared) through a second `while` loop, like Figure 3's histogram.
//!
//! In-memory Bloom filters built this way save disk IOs in key-value
//! stores (the paper's motivating use).

use fleet_lang::{lit, UnitBuilder, UnitSpec};

/// Items per block.
pub const BLOCK_ITEMS: u64 = 512;
/// Bitfield size in bits (must be a power of two).
pub const FILTER_BITS: u64 = 2048;
/// Hash functions per item.
pub const K_HASHES: usize = 8;

/// Knuth-style odd multiplicative constants, one per hash function.
pub const HASH_CONSTS: [u32; K_HASHES] = [
    0x9E37_79B1,
    0x85EB_CA77,
    0xC2B2_AE3D,
    0x27D4_EB2F,
    0x1656_67B1,
    0xD3A2_646D,
    0xFD70_46C5,
    0xB55A_4F09,
];

const FILTER_WORDS: u64 = FILTER_BITS / 64; // 64-bit BRAM words
const FILTER_BYTES: u64 = FILTER_BITS / 8;

fn hash(item: u32, k: usize) -> u64 {
    let prod = item.wrapping_mul(HASH_CONSTS[k]);
    (prod >> (32 - FILTER_BITS.trailing_zeros())) as u64
}

/// Builds the Bloom-filter processing unit (32-bit in, 8-bit out).
pub fn bloom_unit() -> UnitSpec {
    let mut u = UnitBuilder::new("BloomFilter", 32, 8);
    let item_cnt = u.reg("itemCounter", 10, 0);
    let hash_i = u.reg("hashIdx", 4, 0);
    let flush_idx = u.reg("flushIdx", 9, 0); // 0..FILTER_BYTES
    let bf = u.bram("bitfield", FILTER_WORDS as usize, 64);
    let input = u.input();

    let flushing = item_cnt.eq_e(BLOCK_ITEMS);

    // Block flush: emit FILTER_BYTES bytes, clearing each word as its
    // last byte goes out.
    u.if_(flushing.clone(), |u| {
        u.while_(flush_idx.lt_e(FILTER_BYTES), |u| {
            let word_addr = flush_idx.slice(8, 3); // byte 0..255 -> word 0..31
            let byte_in_word = flush_idx.slice(2, 0);
            let word = bf.read(word_addr.clone());
            u.emit((word.clone() >> (byte_in_word.concat(lit(0, 3)))).slice(7, 0));
            // Clear the word as its last byte is emitted.
            u.if_(byte_in_word.eq_e(7u64), |u| {
                u.write(bf, word_addr, lit(0, 64));
            });
            u.set(flush_idx, flush_idx + 1u64);
        });
    });

    // Hash loop: set one bit per virtual cycle. Waits for a flush in
    // progress to complete (its condition requires the flush to be done).
    let flush_done = flushing.clone().not_b().or_b(flush_idx.ge_e(FILTER_BYTES));
    let hashing = flush_done.and_b(hash_i.lt_e(K_HASHES as u64));
    u.while_(hashing, |u| {
        // h = (input * C[hash_i]) >> (32 - log2(FILTER_BITS)), one
        // constant selected per iteration.
        let shift = 32 - FILTER_BITS.trailing_zeros() as u64;
        let mut h = lit(0, 11);
        for (k, c) in HASH_CONSTS.iter().enumerate() {
            let prod = (input.clone() * (*c as u64)).slice(31, 0);
            let hk = (prod >> shift).slice(10, 0);
            h = hash_i.eq_e(k as u64).mux(hk, h);
        }
        let word_addr = h.slice(10, 6);
        let bit = h.slice(5, 0);
        let one = lit(1, 64);
        u.write(bf, word_addr.clone(), bf.read(word_addr) | (one << bit));
        u.set(hash_i, hash_i + 1u64);
    });

    // Final virtual cycle: consume the token.
    u.set(hash_i, lit(0, 4));
    u.if_(flushing, |u| {
        u.set(flush_idx, lit(0, 9));
        u.set(item_cnt, lit(1, 10));
    })
    .else_(|u| {
        u.set(item_cnt, item_cnt + 1u64);
    });

    u.build().expect("bloom unit is valid")
}

/// Reference implementation: Bloom filters per block, concatenated.
pub fn golden(input: &[u8]) -> Vec<u8> {
    assert!(input.len().is_multiple_of(4), "input must be whole 32-bit items");
    let mut out = Vec::new();
    let mut filter = vec![0u8; FILTER_BYTES as usize];
    let mut count = 0u64;
    for chunk in input.chunks_exact(4) {
        if count == BLOCK_ITEMS {
            out.extend_from_slice(&filter);
            filter.iter_mut().for_each(|b| *b = 0);
            count = 0;
        }
        let item = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        for k in 0..K_HASHES {
            let h = hash(item, k);
            filter[(h / 8) as usize] |= 1 << (h % 8);
        }
        count += 1;
    }
    if count == BLOCK_ITEMS {
        // Matches the hardware: the cleanup execution flushes only a
        // complete block (inputs are block-aligned by construction).
        out.extend_from_slice(&filter);
    }
    out
}

/// Membership test against one emitted filter (no false negatives —
/// property-tested).
pub fn filter_contains(filter: &[u8], item: u32) -> bool {
    (0..K_HASHES).all(|k| {
        let h = hash(item, k);
        filter[(h / 8) as usize] & (1 << (h % 8)) != 0
    })
}

/// Generates a block-aligned stream of `approx_bytes` of random items.
pub fn gen_stream(seed: u64, approx_bytes: usize) -> Vec<u8> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let block_bytes = (BLOCK_ITEMS * 4) as usize;
    let blocks = (approx_bytes / block_bytes).max(1);
    let mut out = Vec::with_capacity(blocks * block_bytes);
    for _ in 0..blocks * BLOCK_ITEMS as usize {
        out.extend_from_slice(&rng.gen::<u32>().to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleet_isim::{bytes_to_tokens, tokens_to_bytes, Interpreter};

    #[test]
    fn unit_matches_golden_one_block() {
        let spec = bloom_unit();
        let stream = gen_stream(1, 2048);
        let tokens = bytes_to_tokens(&stream, 32).unwrap();
        let out = Interpreter::run_tokens(&spec, &tokens).unwrap();
        let bytes = tokens_to_bytes(&out.tokens, 8);
        assert_eq!(bytes, golden(&stream));
        assert_eq!(bytes.len(), FILTER_BYTES as usize);
    }

    #[test]
    fn unit_matches_golden_multi_block() {
        let spec = bloom_unit();
        let stream = gen_stream(7, 3 * 2048);
        let tokens = bytes_to_tokens(&stream, 32).unwrap();
        let out = Interpreter::run_tokens(&spec, &tokens).unwrap();
        assert_eq!(tokens_to_bytes(&out.tokens, 8), golden(&stream));
    }

    #[test]
    fn no_false_negatives() {
        let stream = gen_stream(3, 2048);
        let g = golden(&stream);
        let filter = &g[..FILTER_BYTES as usize];
        for chunk in stream.chunks_exact(4) {
            let item = u32::from_le_bytes(chunk.try_into().unwrap());
            assert!(filter_contains(filter, item));
        }
    }

    #[test]
    fn vcycles_reflect_hash_serialization() {
        // K+1 virtual cycles per item plus the flush: the paper's
        // "several cycles per token" behaviour for Bloom filters.
        let spec = bloom_unit();
        let stream = gen_stream(5, 2048);
        let tokens = bytes_to_tokens(&stream, 32).unwrap();
        let out = Interpreter::run_tokens(&spec, &tokens).unwrap();
        let per_item = out.vcycles as f64 / tokens.len() as f64;
        assert!(
            (8.5..=10.5).contains(&per_item),
            "expected ~9 virtual cycles per item, got {per_item:.2}"
        );
    }
}
