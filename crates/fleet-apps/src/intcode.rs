//! Integer compression (§7.1).
//!
//! Blocks of four consecutive 32-bit integers are encoded with the best
//! of sixteen fixed bit widths, with out-of-range values escaped to a
//! variable-byte exception section — the OptPFD-inspired scheme the
//! paper describes. All sixteen candidate costs are evaluated *in
//! parallel in one virtual cycle* (the fusion that CPUs/GPUs must
//! serialize); emission of the chosen encoding then runs over a `while`
//! loop at one output byte per virtual cycle, which is why this
//! application runs at 3-8 virtual cycles per input token and needs
//! 8-bit output tokens (dynamic shifts are expensive, as the paper
//! notes).
//!
//! ## Format (per block)
//!
//! * header byte: `width_index | exception_bitmap << 4`
//! * main section: `4 × width` bits, LSB-first packed; exception slots
//!   packed as zero
//! * exception section: var-byte (7 bits + continuation) for each
//!   exception value in order
//!
//! [`decode`] restores the original integers (round-trip
//! property-tested).

use fleet_lang::{lit, E, UnitBuilder, UnitSpec};

/// Integers per block.
pub const BLOCK: usize = 4;

/// The sixteen candidate bit widths.
pub const WIDTHS: [u16; 16] = [1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 14, 16, 20, 24, 28, 32];

fn varbyte_len(v: u32) -> usize {
    match v {
        0..=0x7F => 1,
        0x80..=0x3FFF => 2,
        0x4000..=0x1F_FFFF => 3,
        0x20_0000..=0xFFF_FFFF => 4,
        _ => 5,
    }
}

fn fits(v: u32, w: u16) -> bool {
    w >= 32 || (v as u64) < (1u64 << w)
}

/// Encodes one block (reference implementation).
fn encode_block(vals: &[u32; BLOCK], out: &mut Vec<u8>) {
    // Cost of each width; ties resolved toward the smaller width index,
    // exactly like the hardware's priority tournament.
    let mut best = 0usize;
    let mut best_cost = usize::MAX;
    for (i, &w) in WIDTHS.iter().enumerate() {
        let main = (BLOCK * w as usize).div_ceil(8);
        let exc: usize = vals.iter().filter(|&&v| !fits(v, w)).map(|&v| varbyte_len(v)).sum();
        let cost = 1 + main + exc;
        if cost < best_cost {
            best_cost = cost;
            best = i;
        }
    }
    let w = WIDTHS[best];
    let mut bitmap = 0u8;
    for (k, &v) in vals.iter().enumerate() {
        if !fits(v, w) {
            bitmap |= 1 << k;
        }
    }
    out.push(best as u8 | (bitmap << 4));
    // Main section.
    let mut bitbuf = 0u64;
    let mut nbits = 0u16;
    for (k, &v) in vals.iter().enumerate() {
        let stored = if bitmap & (1 << k) != 0 { 0 } else { v as u64 };
        bitbuf |= (stored & ((1u64 << w).wrapping_sub(1) | if w == 32 { 0xFFFF_FFFF } else { 0 }))
            << nbits;
        nbits += w;
        while nbits >= 8 {
            out.push(bitbuf as u8);
            bitbuf >>= 8;
            nbits -= 8;
        }
    }
    if nbits > 0 {
        out.push(bitbuf as u8);
    }
    // Exceptions.
    for (k, &v) in vals.iter().enumerate() {
        if bitmap & (1 << k) != 0 {
            let mut x = v;
            loop {
                let byte = (x & 0x7F) as u8;
                x >>= 7;
                out.push(if x != 0 { byte | 0x80 } else { byte });
                if x == 0 {
                    break;
                }
            }
        }
    }
}

/// Reference encoder over a whole stream of 32-bit little-endian
/// integers. Only whole blocks are encoded (workloads are
/// block-aligned, like the paper's histogram example).
pub fn golden(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let vals: Vec<u32> = input
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect();
    for block in vals.chunks_exact(BLOCK) {
        encode_block(block.try_into().expect("BLOCK values"), &mut out);
    }
    out
}

/// Decodes an encoded stream back to the original integers.
pub fn decode(encoded: &[u8]) -> Vec<u32> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < encoded.len() {
        let hdr = encoded[pos];
        pos += 1;
        let w = WIDTHS[(hdr & 0xF) as usize];
        let bitmap = hdr >> 4;
        let main_bytes = (BLOCK * w as usize).div_ceil(8);
        let mut bitbuf = 0u128;
        for (i, &b) in encoded[pos..pos + main_bytes].iter().enumerate() {
            bitbuf |= (b as u128) << (8 * i);
        }
        pos += main_bytes;
        let mut vals = [0u32; BLOCK];
        for (k, val) in vals.iter_mut().enumerate() {
            let raw = (bitbuf >> (k as u32 * w as u32)) & ((1u128 << w) - 1);
            *val = raw as u32;
        }
        for (k, val) in vals.iter_mut().enumerate() {
            if bitmap & (1 << k) != 0 {
                let mut v = 0u32;
                let mut shift = 0;
                loop {
                    let b = encoded[pos];
                    pos += 1;
                    v |= ((b & 0x7F) as u32) << shift;
                    shift += 7;
                    if b & 0x80 == 0 {
                        break;
                    }
                }
                *val = v;
            }
        }
        out.extend_from_slice(&vals);
    }
    out
}

/// Builds the integer-coding processing unit (32-bit in, 8-bit out).
pub fn intcode_unit() -> UnitSpec {
    let mut u = UnitBuilder::new("IntegerCoding", 32, 8);
    let input = u.input();

    let block = u.vec_reg("block", BLOCK, 32, 0);
    let blk_idx = u.reg("blkIdx", 3, 0);
    // Emission state.
    let emitting = u.reg("emitting", 1, 0);
    let emit_phase = u.reg("emitPhase", 2, 0); // 0 hdr, 1 main, 2 exceptions
    let best_w = u.reg("bestW", 4, 0);
    let bitmap = u.reg("excBitmap", 4, 0);
    let item = u.reg("item", 3, 0);
    let bitbuf = u.reg("bitbuf", 40, 0);
    let nbits = u.reg("nbits", 6, 0);
    let exc_item = u.reg("excItem", 3, 0);
    let exc_val = u.reg("excVal", 32, 0);
    let exc_started = u.reg("excStarted", 1, 0);

    // Per-width constants as expressions.
    let width_of = |idx: &E| -> E {
        let mut w: E = lit(WIDTHS[15] as u64, 6);
        for (i, &wi) in WIDTHS.iter().enumerate().take(15).rev() {
            w = idx.eq_e(i as u64).mux(lit(wi as u64, 6), w);
        }
        w
    };

    // ---- Emission loop: one byte (at most) per virtual cycle. ----
    u.while_(emitting.e(), |u| {
        let w = width_of(&best_w.e());
        u.if_(emit_phase.eq_e(0u64), |u| {
            // Header byte.
            u.emit(bitmap.e().concat(best_w.e()));
            u.set(emit_phase, lit(1, 2));
            u.set(item, lit(0, 3));
            u.set(bitbuf, lit(0, 40));
            u.set(nbits, lit(0, 6));
        })
        .elif(emit_phase.eq_e(1u64), |u| {
            // Main section: insert one value or drain one byte per cycle.
            u.if_(nbits.ge_e(8u64), |u| {
                u.emit(bitbuf.slice(7, 0));
                u.set(bitbuf, bitbuf >> 8u64);
                u.set(nbits, nbits - 8u64);
            })
            .elif(item.lt_e(BLOCK as u64), |u| {
                let v = block.read(item.slice(1, 0));
                let is_exc = (bitmap.e() >> item.e()).bit(0);
                // Mask to w bits: (v << (32-w... easier: v & ((1<<w)-1)).
                let ones: E = lit(0xFF_FFFF_FFFF, 40);
                let mask_w = (ones.clone() >> (lit(40u64, 6) - w.clone())).slice(31, 0);
                let stored = is_exc.mux(lit(0, 32), v & mask_w);
                let widened: E = lit(0, 8).concat(stored); // 40 bits
                u.set(bitbuf, bitbuf.e() | (widened << nbits.e()));
                u.set(nbits, nbits.e() + w.clone());
                u.set(item, item + 1u64);
            })
            .elif(nbits.gt_e(0u64), |u| {
                // Final ragged byte.
                u.emit(bitbuf.slice(7, 0));
                u.set(bitbuf, lit(0, 40));
                u.set(nbits, lit(0, 6));
            })
            .else_(|u| {
                u.set(emit_phase, lit(2, 2));
                u.set(exc_item, lit(0, 3));
                u.set(exc_started, lit(0, 1));
            });
        })
        .else_(|u| {
            // Exception section: var-byte, one byte per cycle.
            u.if_(exc_item.ge_e(BLOCK as u64), |u| {
                u.set(emitting, lit(0, 1));
                u.set(emit_phase, lit(0, 2));
            })
            .elif((bitmap.e() >> exc_item.e()).bit(0).not_b(), |u| {
                u.set(exc_item, exc_item + 1u64);
                u.set(exc_started, lit(0, 1));
            })
            .else_(|u| {
                let cur = exc_started
                    .e()
                    .mux(exc_val.e(), block.read(exc_item.slice(1, 0)));
                let more = cur.ge_e(128u64);
                // Continuation bit on top: byte = 0x80 | cur[6:0].
                u.emit(more.clone().mux(lit(1, 1).concat(cur.slice(6, 0)), cur.slice(7, 0)));
                u.set(exc_val, cur.clone() >> 7u64);
                // Continue this value's var-byte next cycle, or advance.
                u.set(exc_started, more.clone().mux(lit(1, 1), lit(0, 1)));
                u.if_(more.not_b(), |u| {
                    u.set(exc_item, exc_item + 1u64);
                });
            });
        });
    });

    // ---- Final virtual cycle: collect the token; on the 4th, pick the
    // best width combinationally (sixteen costs in parallel). ----
    u.set_vec(block, blk_idx.slice(1, 0), input.clone());
    let last = blk_idx.eq_e(BLOCK as u64 - 1);
    u.set(blk_idx, last.clone().mux(lit(0, 3), blk_idx + 1u64));
    u.if_(last, |u| {
        // Values of the block: three registered + the incoming token.
        let vals: Vec<E> = (0..BLOCK)
            .map(|k| {
                if k == BLOCK - 1 {
                    input.clone()
                } else {
                    block.read(lit(k as u64, 2))
                }
            })
            .collect();
        // varbyte length per value (3 bits each).
        let vb_len: Vec<E> = vals
            .iter()
            .map(|v| {
                v.le_e(0x7Fu64).mux(
                    lit(1, 3),
                    v.le_e(0x3FFFu64).mux(
                        lit(2, 3),
                        v.le_e(0x1F_FFFFu64)
                            .mux(lit(3, 3), v.le_e(0xFFF_FFFFu64).mux(lit(4, 3), lit(5, 3))),
                    ),
                )
            })
            .collect();
        // Costs for all sixteen widths, in parallel.
        let mut costs: Vec<E> = Vec::new();
        let mut bitmaps: Vec<E> = Vec::new();
        for &w in WIDTHS.iter() {
            let main = (BLOCK * w as usize).div_ceil(8) as u64;
            let mut cost: E = lit(1 + main, 6);
            let mut bm: E = lit(0, 4);
            for (k, v) in vals.iter().enumerate() {
                let exc: E = if w >= 32 {
                    lit(0, 1)
                } else {
                    v.ge_e(1u64 << w)
                };
                cost = cost + exc.clone().mux(lit(0, 3).concat(vb_len[k].clone()).slice(5, 0), lit(0, 6));
                bm = bm.e_or_shifted(exc, k);
            }
            costs.push(cost);
            bitmaps.push(bm);
        }
        // Priority argmin (smaller index wins ties).
        let mut best_idx: E = lit(15, 4);
        let mut best_cost: E = costs[15].clone();
        let mut best_bm: E = bitmaps[15].clone();
        for i in (0..15).rev() {
            let take = costs[i].le_e(best_cost.clone());
            best_idx = take.mux(lit(i as u64, 4), best_idx);
            best_bm = take.mux(bitmaps[i].clone(), best_bm);
            best_cost = take.mux(costs[i].clone(), best_cost);
        }
        u.set(best_w, best_idx);
        u.set(bitmap, best_bm);
        u.set(emitting, lit(1, 1));
        u.set(emit_phase, lit(0, 2));
    });

    u.build().expect("integer coding unit is valid")
}

/// Helper trait used during elaboration to OR a bit into a bitmap at a
/// compile-time position.
trait OrShifted {
    fn e_or_shifted(&self, bit: E, k: usize) -> E;
}

impl OrShifted for E {
    fn e_or_shifted(&self, bit: E, k: usize) -> E {
        let widened: E = lit(0, 3).concat(bit); // 4 bits
        self.clone() | (widened << k as u64)
    }
}

/// Generates a block-aligned stream with integers drawn uniformly from
/// `[0, 2^max_bits)` — the paper averages over `max_bits ∈ {5, 10, 15,
/// 20, 25}`.
pub fn gen_stream(seed: u64, approx_bytes: usize, max_bits: u32) -> Vec<u8> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let n = (approx_bytes / 4 / BLOCK).max(1) * BLOCK;
    let mut out = Vec::with_capacity(n * 4);
    let bound = 1u64 << max_bits;
    for _ in 0..n {
        let v = rng.gen_range(0..bound) as u32;
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleet_isim::{bytes_to_tokens, tokens_to_bytes, Interpreter};
    use proptest::prelude::*;

    fn run_unit(stream: &[u8]) -> Vec<u8> {
        let spec = intcode_unit();
        let tokens = bytes_to_tokens(stream, 32).unwrap();
        let out = Interpreter::run_tokens(&spec, &tokens).unwrap();
        tokens_to_bytes(&out.tokens, 8)
    }

    #[test]
    fn golden_roundtrips() {
        for bits in [5, 10, 15, 20, 25, 32] {
            let stream = gen_stream(bits as u64, 4096, bits);
            let vals: Vec<u32> = stream
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                .collect();
            assert_eq!(decode(&golden(&stream)), vals, "bits={bits}");
        }
    }

    #[test]
    fn unit_matches_golden_small_values() {
        let stream = gen_stream(1, 512, 5);
        assert_eq!(run_unit(&stream), golden(&stream));
    }

    #[test]
    fn unit_matches_golden_mixed_values() {
        for bits in [10, 15, 20, 25] {
            let stream = gen_stream(100 + bits as u64, 1024, bits);
            assert_eq!(run_unit(&stream), golden(&stream), "bits={bits}");
        }
    }

    #[test]
    fn unit_handles_extremes() {
        let mut stream = Vec::new();
        for v in [0u32, u32::MAX, 1, 127, 128, 1 << 20, (1 << 20) - 1, 255] {
            stream.extend_from_slice(&v.to_le_bytes());
        }
        assert_eq!(run_unit(&stream), golden(&stream));
    }

    #[test]
    fn compresses_small_integers() {
        let stream = gen_stream(3, 4096, 5);
        let enc = golden(&stream);
        assert!(
            enc.len() * 2 < stream.len(),
            "5-bit integers should compress well: {} -> {}",
            stream.len(),
            enc.len()
        );
    }

    #[test]
    fn cycles_per_token_in_paper_band() {
        // The paper reports 3-8 virtual cycles per 32-bit token.
        let mut total_tokens = 0u64;
        let mut total_vcycles = 0u64;
        for bits in [5, 10, 15, 20, 25] {
            let stream = gen_stream(bits as u64, 2048, bits);
            let tokens = bytes_to_tokens(&stream, 32).unwrap();
            let spec = intcode_unit();
            let out = Interpreter::run_tokens(&spec, &tokens).unwrap();
            total_tokens += tokens.len() as u64;
            total_vcycles += out.vcycles;
        }
        let per = total_vcycles as f64 / total_tokens as f64;
        assert!(
            (2.5..=8.5).contains(&per),
            "virtual cycles per token {per:.2} outside the paper's 3-8 band"
        );
    }

    proptest! {
        #[test]
        fn roundtrip_random_blocks(vals in proptest::collection::vec(any::<u32>(), 4..=64)) {
            let n = (vals.len() / BLOCK) * BLOCK;
            let mut stream = Vec::new();
            for v in &vals[..n] {
                stream.extend_from_slice(&v.to_le_bytes());
            }
            let enc = golden(&stream);
            prop_assert_eq!(decode(&enc), &vals[..n]);
        }

        #[test]
        fn unit_equals_golden_random(vals in proptest::collection::vec(0u32..=u32::MAX, 8..=24)) {
            let n = (vals.len() / BLOCK) * BLOCK;
            let mut stream = Vec::new();
            for v in &vals[..n] {
                stream.extend_from_slice(&v.to_le_bytes());
            }
            prop_assert_eq!(run_unit(&stream), golden(&stream));
        }
    }
}
