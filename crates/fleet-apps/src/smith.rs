//! Smith-Waterman fuzzy matching (§7.1).
//!
//! The unit holds one row of the local-alignment score matrix in `M`
//! registers (the paper's key observation: values depend only on the
//! same and previous row). Each input character updates the whole row in
//! a single virtual cycle — a deep combinational chain that fuses what
//! would be dozens of CPU instructions, the paper's main source of
//! speedup. Whenever any cell reaches the runtime-provided threshold,
//! the current stream index is emitted; software can reconstruct exact
//! matches from those positions.
//!
//! Stream format: `M` target bytes, then 1 threshold byte, then payload.

use fleet_lang::{lit, E, UnitBuilder, UnitSpec};

/// Target string length (the paper uses m = 16).
pub const M: usize = 16;

/// Match bonus.
pub const MATCH: u8 = 2;
/// Mismatch / gap penalty (subtracted, saturating at zero).
pub const PENALTY: u8 = 1;

/// Builds the Smith-Waterman processing unit (8-bit in, 32-bit out).
pub fn smith_unit() -> UnitSpec {
    let mut u = UnitBuilder::new("SmithWaterman", 8, 32);
    let input = u.input();
    let nf = u.stream_finished().not_b();

    // Setup phase: load target chars and threshold.
    let setup_cnt = u.reg("setupCnt", 6, 0); // 0..=M
    let threshold = u.reg("threshold", 8, 0);
    let targets: Vec<_> = (0..M).map(|j| u.reg(format!("target{j}"), 8, 0)).collect();
    let row: Vec<_> = (0..M).map(|j| u.reg(format!("h{j}"), 8, 0)).collect();
    let pos = u.reg("pos", 32, 0);

    let in_setup = setup_cnt.le_e(M as u64);

    u.if_(nf, |u| {
        u.if_(in_setup.clone(), |u| {
            for (j, t) in targets.iter().enumerate() {
                u.if_(setup_cnt.eq_e(j as u64), |u| u.set(*t, input.clone()));
            }
            u.if_(setup_cnt.eq_e(M as u64), |u| u.set(threshold, input.clone()));
            u.set(setup_cnt, setup_cnt + 1u64);
            u.set(pos, pos + 1u64);
        })
        .else_(|u| {
            // One full row update per character.
            let sat_dec = |x: &E| x.eq_e(0u64).mux(lit(0, 8), x.clone() - PENALTY as u64);
            let sat_inc = |x: &E| {
                x.gt_e((255 - MATCH) as u64)
                    .mux(lit(255, 8), x.clone() + MATCH as u64)
            };
            let max2 = |a: &E, b: &E| a.ge_e(b.clone()).mux(a.clone(), b.clone());

            let mut left: E = lit(0, 8); // column boundary H[i][-1] = 0
            let mut any_hit: E = lit(0, 1);
            let mut new_vals: Vec<E> = Vec::with_capacity(M);
            for j in 0..M {
                let diag: E = if j == 0 { lit(0, 8) } else { row[j - 1].e() };
                let up: E = row[j].e();
                let is_match = input.eq_e(targets[j].e());
                let diag_score = is_match.mux(sat_inc(&diag), sat_dec(&diag));
                let best = max2(&max2(&diag_score, &sat_dec(&up)), &sat_dec(&left));
                any_hit = any_hit.or_b(best.ge_e(threshold.e()));
                new_vals.push(best.clone());
                left = best;
            }
            for (j, v) in new_vals.into_iter().enumerate() {
                u.set(row[j], v);
            }
            // Absolute stream index of the current character.
            u.if_(any_hit, |u| u.emit(pos.e()));
            u.set(pos, pos + 1u64);
        });
    });

    u.build().expect("smith-waterman unit is valid")
}

/// Reference implementation over the same stream format: emits the
/// payload indices whose row contains a cell ≥ threshold, as
/// little-endian `u32`s.
pub fn golden(input: &[u8]) -> Vec<u8> {
    if input.len() < M + 1 {
        return Vec::new();
    }
    let target = &input[..M];
    let threshold = input[M];
    let payload = &input[M + 1..];
    let mut row = [0u8; M];
    let mut out = Vec::new();
    for (i, &c) in payload.iter().enumerate() {
        let mut new_row = [0u8; M];
        let mut left = 0u8;
        let mut hit = false;
        for j in 0..M {
            let diag = if j == 0 { 0 } else { row[j - 1] };
            let up = row[j];
            let diag_score = if c == target[j] {
                diag.saturating_add(MATCH)
            } else {
                diag.saturating_sub(PENALTY)
            };
            let best = diag_score
                .max(up.saturating_sub(PENALTY))
                .max(left.saturating_sub(PENALTY));
            hit |= best >= threshold;
            new_row[j] = best;
            left = best;
        }
        row = new_row;
        if hit {
            out.extend_from_slice(&(i as u32 + M as u32 + 1).to_le_bytes());
        }
    }
    out
}

/// Generates a stream: random DNA-like payload with the target planted
/// every ~500 bytes (sometimes with one mutation).
pub fn gen_stream(seed: u64, approx_bytes: usize) -> Vec<u8> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let alphabet = b"ACGT";
    let target: Vec<u8> = (0..M).map(|_| alphabet[rng.gen_range(0..4)]).collect();
    let threshold = (M as u8) * MATCH - 6; // allows a couple of mutations

    let mut out = Vec::with_capacity(approx_bytes + M + 1);
    out.extend_from_slice(&target);
    out.push(threshold);
    while out.len() < approx_bytes {
        for _ in 0..rng.gen_range(300..700) {
            out.push(alphabet[rng.gen_range(0..4)]);
        }
        let mut planted = target.clone();
        if rng.gen_bool(0.5) {
            let k = rng.gen_range(0..M);
            planted[k] = alphabet[rng.gen_range(0..4)];
        }
        out.extend_from_slice(&planted);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleet_isim::{bytes_to_tokens, tokens_to_bytes, Interpreter};

    fn run_unit(stream: &[u8]) -> Vec<u8> {
        let spec = smith_unit();
        let tokens = bytes_to_tokens(stream, 8).unwrap();
        let out = Interpreter::run_tokens(&spec, &tokens).unwrap();
        tokens_to_bytes(&out.tokens, 32)
    }

    #[test]
    fn exact_match_is_found() {
        let mut stream = Vec::new();
        stream.extend_from_slice(b"ACGTACGTACGTACGT"); // target
        stream.push((M as u8) * MATCH); // exact threshold
        stream.extend_from_slice(b"TTTTACGTACGTACGTACGTTTTT");
        let got = run_unit(&stream);
        let expect = golden(&stream);
        assert_eq!(got, expect);
        assert!(!expect.is_empty(), "the planted exact match must be reported");
    }

    #[test]
    fn matches_golden_on_random_stream() {
        let stream = gen_stream(11, 4000);
        assert_eq!(run_unit(&stream), golden(&stream));
    }

    #[test]
    fn fuzzy_matches_within_threshold() {
        let mut stream = Vec::new();
        stream.extend_from_slice(b"AAAACCCCGGGGTTTT");
        stream.push((M as u8) * MATCH - 3); // one mutation allowed
        stream.extend_from_slice(b"GGGG");
        stream.extend_from_slice(b"AAAACCCCGGGGTTTA"); // one mismatch
        stream.extend_from_slice(b"GGGG");
        let got = run_unit(&stream);
        assert!(!got.is_empty(), "single-mutation match must clear the threshold");
        assert_eq!(got, golden(&stream));
    }

    #[test]
    fn empty_payload_matches_nothing() {
        let mut stream = vec![b'A'; M];
        stream.push(1);
        assert_eq!(run_unit(&stream), golden(&stream));
        assert!(golden(&stream).is_empty());
    }

    #[test]
    fn threshold_zero_fires_everywhere() {
        let mut stream = vec![b'A'; M];
        stream.push(0);
        stream.extend_from_slice(b"CGT");
        let got = run_unit(&stream);
        assert_eq!(got, golden(&stream));
        assert_eq!(got.len() / 4, 3, "every payload index reported");
    }

    #[test]
    fn one_virtual_cycle_per_character() {
        let spec = smith_unit();
        let stream = gen_stream(2, 2000);
        let tokens = bytes_to_tokens(&stream, 8).unwrap();
        let out = Interpreter::run_tokens(&spec, &tokens).unwrap();
        assert_eq!(out.vcycles, tokens.len() as u64 + 1); // +1 cleanup
    }
}
