//! Gradient-boosted decision-tree evaluation (§7.1).
//!
//! The ensemble's nodes are loaded from the start of the stream into a
//! BRAM; the rest of the stream is datapoints of `n_features` 32-bit
//! integers. Evaluation walks each tree in a `while` loop at two virtual
//! cycles per level: one cycle registers the node word read from the
//! node BRAM, the next compares the selected feature against the
//! threshold and chooses a child — the structure the paper describes as
//! "only one comparison for each BRAM read", which makes this the one
//! application bound on aggregate BRAM throughput rather than logic.
//!
//! Evaluation of datapoint *k* runs while the first feature of datapoint
//! *k+1* is pending (exactly like Figure 3's histogram flush), so the
//! cleanup execution scores the final datapoint.
//!
//! ## Stream format (32-bit little-endian tokens)
//!
//! `[n_nodes][n_features][n_trees][root_0..root_{t-1}][node words: 2
//! tokens each (lo, hi)]` then datapoints.

use fleet_lang::{lit, UnitBuilder, UnitSpec};
use rand::{Rng, SeedableRng};

/// Maximum ensemble size in nodes.
pub const MAX_NODES: usize = 1024;
/// Maximum number of trees.
pub const MAX_TREES: usize = 16;
/// Maximum features per datapoint.
pub const MAX_FEATURES: usize = 64;

/// One ensemble node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Node {
    /// Internal split: go left when `feature < threshold`.
    Split {
        /// Feature index.
        feature: u16,
        /// Split threshold (unsigned compare).
        threshold: u32,
        /// Left child node index.
        left: u16,
        /// Right child node index.
        right: u16,
    },
    /// Leaf contribution added to the score.
    Leaf {
        /// Value added to the (wrapping) 32-bit score.
        value: u32,
    },
}

impl Node {
    /// Packs the node into the 63-bit hardware layout:
    /// `[62]=leaf [61:52]=right [51:42]=left [41:32]=feature [31:0]=threshold/value`.
    pub fn pack(self) -> u64 {
        match self {
            Node::Split { feature, threshold, left, right } => {
                debug_assert!(feature < 1024 && left < 1024 && right < 1024);
                ((right as u64) << 52)
                    | ((left as u64) << 42)
                    | ((feature as u64) << 32)
                    | threshold as u64
            }
            Node::Leaf { value } => (1u64 << 62) | value as u64,
        }
    }

    /// Inverse of [`Node::pack`].
    pub fn unpack(word: u64) -> Node {
        if word & (1 << 62) != 0 {
            Node::Leaf { value: word as u32 }
        } else {
            Node::Split {
                feature: ((word >> 32) & 0x3FF) as u16,
                threshold: word as u32,
                left: ((word >> 42) & 0x3FF) as u16,
                right: ((word >> 52) & 0x3FF) as u16,
            }
        }
    }
}

/// A gradient-boosted ensemble: shared node arena plus per-tree roots.
#[derive(Debug, Clone)]
pub struct Ensemble {
    /// All nodes of all trees.
    pub nodes: Vec<Node>,
    /// Root node index of each tree.
    pub roots: Vec<u16>,
    /// Features per datapoint.
    pub n_features: usize,
}

impl Ensemble {
    /// Generates a random complete-ish ensemble.
    ///
    /// # Panics
    ///
    /// Panics if the requested shape exceeds the hardware limits.
    pub fn random(seed: u64, n_trees: usize, depth: usize, n_features: usize) -> Ensemble {
        assert!(n_trees <= MAX_TREES && n_features <= MAX_FEATURES);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut nodes = Vec::new();
        let mut roots = Vec::new();
        for _ in 0..n_trees {
            let root = gen_tree(&mut rng, &mut nodes, depth, n_features);
            roots.push(root);
        }
        assert!(nodes.len() <= MAX_NODES, "ensemble too large");
        Ensemble { nodes, roots, n_features }
    }

    /// Scores one datapoint: wrapping sum of the leaf values of every
    /// tree.
    pub fn score(&self, features: &[u32]) -> u32 {
        let mut acc = 0u32;
        for &root in &self.roots {
            let mut cur = root as usize;
            loop {
                match self.nodes[cur] {
                    Node::Leaf { value } => {
                        acc = acc.wrapping_add(value);
                        break;
                    }
                    Node::Split { feature, threshold, left, right } => {
                        cur = if features[feature as usize] < threshold {
                            left as usize
                        } else {
                            right as usize
                        };
                    }
                }
            }
        }
        acc
    }

    /// Serializes the header tokens of the stream format.
    pub fn header_tokens(&self) -> Vec<u32> {
        let mut out = vec![
            self.nodes.len() as u32,
            self.n_features as u32,
            self.roots.len() as u32,
        ];
        out.extend(self.roots.iter().map(|&r| r as u32));
        for n in &self.nodes {
            let w = n.pack();
            out.push(w as u32);
            out.push((w >> 32) as u32);
        }
        out
    }
}

fn gen_tree(
    rng: &mut rand::rngs::StdRng,
    nodes: &mut Vec<Node>,
    depth: usize,
    n_features: usize,
) -> u16 {
    if depth == 0 {
        nodes.push(Node::Leaf { value: rng.gen_range(0..1000) });
        return (nodes.len() - 1) as u16;
    }
    let left = gen_tree(rng, nodes, depth - 1, n_features);
    let right = gen_tree(rng, nodes, depth - 1, n_features);
    nodes.push(Node::Split {
        feature: rng.gen_range(0..n_features) as u16,
        threshold: rng.gen(),
        left,
        right,
    });
    (nodes.len() - 1) as u16
}

/// Builds the decision-tree processing unit (32-bit in, 32-bit out).
pub fn tree_unit() -> UnitSpec {
    let mut u = UnitBuilder::new("DecisionTree", 32, 32);
    let input = u.input();

    // Header state.
    let phase = u.reg("phase", 3, 0); // 0..=4: nNodes,nFeat,nTrees,roots,nodes; 5: run
    let n_nodes = u.reg("nNodes", 11, 0);
    let n_feat = u.reg("nFeatures", 7, 0);
    let n_trees = u.reg("nTrees", 5, 0);
    let load_idx = u.reg("loadIdx", 12, 0);
    let word_lo = u.reg("wordLo", 32, 0);
    let roots = u.vec_reg("roots", MAX_TREES, 10, 0);
    let nodes = u.bram("nodes", MAX_NODES, 63);
    let dp = u.bram("datapoint", MAX_FEATURES, 32);

    // Evaluation state.
    let feat_idx = u.reg("featIdx", 7, 0);
    let evaluating = u.reg("evaluating", 1, 0);
    let step = u.reg("step", 1, 0);
    let cur_node = u.reg("curNode", 10, 0);
    let node_word = u.reg("nodeWord", 63, 0);
    let tree_idx = u.reg("treeIdx", 5, 0);
    let acc = u.reg("acc", 32, 0);

    // ---- Tree walk: two virtual cycles per level. ----
    u.while_(evaluating.e(), |u| {
        u.if_(step.eq_e(0u64), |u| {
            u.set(node_word, nodes.read(cur_node.e()));
            u.set(step, lit(1, 1));
        })
        .else_(|u| {
            let is_leaf = node_word.bit(62);
            let value = node_word.slice(31, 0);
            let feature = node_word.slice(41, 32).slice(6, 0);
            let left = node_word.slice(51, 42);
            let right = node_word.slice(61, 52);
            u.if_(is_leaf, |u| {
                u.set(acc, acc.e() + value.clone());
                let last_tree = tree_idx.eq_e(n_trees.e() - 1u64);
                u.if_(last_tree, |u| {
                    u.emit(acc.e() + value.clone());
                    u.set(evaluating, lit(0, 1));
                    u.set(tree_idx, lit(0, 5));
                })
                .else_(|u| {
                    u.set(tree_idx, tree_idx + 1u64);
                    u.set(cur_node, roots.read(tree_idx + 1u64));
                });
            })
            .else_(|u| {
                let x = dp.read(feature);
                let go_left = x.lt_e(node_word.slice(31, 0));
                u.set(cur_node, go_left.mux(left, right));
            });
            u.set(step, lit(0, 1));
        });
    });

    // ---- Final virtual cycle: consume the token. ----
    u.if_(phase.eq_e(0u64), |u| {
        u.set(n_nodes, input.slice(10, 0));
        u.set(phase, lit(1, 3));
    })
    .elif(phase.eq_e(1u64), |u| {
        u.set(n_feat, input.slice(6, 0));
        u.set(phase, lit(2, 3));
    })
    .elif(phase.eq_e(2u64), |u| {
        u.set(n_trees, input.slice(4, 0));
        u.set(load_idx, lit(0, 12));
        u.set(phase, lit(3, 3));
    })
    .elif(phase.eq_e(3u64), |u| {
        // Roots.
        u.set_vec(roots, load_idx.slice(3, 0), input.slice(9, 0));
        let done = (load_idx + 1u64).eq_e(n_trees.e());
        u.set(load_idx, done.clone().mux(lit(0, 12), load_idx + 1u64));
        u.if_(done, |u| u.set(phase, lit(4, 3)));
    })
    .elif(phase.eq_e(4u64), |u| {
        // Node words, two tokens each.
        u.if_(load_idx.bit(0).eq_e(0u64), |u| {
            u.set(word_lo, input.clone());
        })
        .else_(|u| {
            let word = input.slice(30, 0).concat(word_lo.e()); // 63 bits
            u.write(nodes, load_idx >> 1u64, word);
        });
        let done = (load_idx + 1u64).eq_e(n_nodes.e().concat(lit(0, 1))); // 2*n_nodes
        u.set(load_idx, load_idx + 1u64);
        u.if_(done, |u| {
            u.set(phase, lit(5, 3));
            u.set(feat_idx, lit(0, 7));
        });
    })
    .else_(|u| {
        // Datapoint collection; evaluation of the previous datapoint has
        // already run in the while loop above.
        u.write(dp, feat_idx.e(), input.clone());
        let last = (feat_idx + 1u64).eq_e(n_feat.e());
        u.set(feat_idx, last.clone().mux(lit(0, 7), feat_idx + 1u64));
        u.if_(last, |u| {
            u.set(evaluating, lit(1, 1));
            u.set(step, lit(0, 1));
            u.set(acc, lit(0, 32));
            u.set(cur_node, roots.read(lit(0, 4)));
            u.set(tree_idx, lit(0, 5));
        });
    });

    u.build().expect("decision tree unit is valid")
}

/// Reference implementation over the whole stream format.
pub fn golden(input: &[u8]) -> Vec<u8> {
    let tokens: Vec<u32> = input
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect();
    let n_nodes = tokens[0] as usize;
    let n_features = tokens[1] as usize;
    let n_trees = tokens[2] as usize;
    let roots: Vec<u16> = tokens[3..3 + n_trees].iter().map(|&r| r as u16).collect();
    let mut nodes = Vec::with_capacity(n_nodes);
    let base = 3 + n_trees;
    for k in 0..n_nodes {
        let lo = tokens[base + 2 * k] as u64;
        let hi = tokens[base + 2 * k + 1] as u64;
        nodes.push(Node::unpack(((hi & 0x7FFF_FFFF) << 32) | lo));
    }
    let ens = Ensemble { nodes, roots, n_features };
    let mut out = Vec::new();
    for dp in tokens[base + 2 * n_nodes..].chunks_exact(n_features) {
        out.extend_from_slice(&ens.score(dp).to_le_bytes());
    }
    out
}

/// Generates a stream: header for a random ensemble plus random
/// datapoints, roughly `approx_bytes` long.
pub fn gen_stream(seed: u64, approx_bytes: usize) -> Vec<u8> {
    gen_stream_shaped(seed, approx_bytes, 8, 6, 8)
}

/// Generates a stream with an explicit ensemble shape.
pub fn gen_stream_shaped(
    seed: u64,
    approx_bytes: usize,
    n_trees: usize,
    depth: usize,
    n_features: usize,
) -> Vec<u8> {
    let ens = Ensemble::random(seed, n_trees, depth, n_features);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
    let mut tokens = ens.header_tokens();
    let n_dp = (approx_bytes / 4).saturating_sub(tokens.len()) / n_features;
    for _ in 0..n_dp.max(1) {
        for _ in 0..n_features {
            tokens.push(rng.gen());
        }
    }
    let mut out = Vec::with_capacity(tokens.len() * 4);
    for t in tokens {
        out.extend_from_slice(&t.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleet_isim::{bytes_to_tokens, tokens_to_bytes, Interpreter};

    #[test]
    fn pack_unpack_roundtrip() {
        let n = Node::Split { feature: 5, threshold: 0xDEADBEEF, left: 100, right: 1023 };
        assert_eq!(Node::unpack(n.pack()), n);
        let l = Node::Leaf { value: 0xFFFF_FFFF };
        assert_eq!(Node::unpack(l.pack()), l);
    }

    fn run_unit(stream: &[u8]) -> Vec<u8> {
        let spec = tree_unit();
        let tokens = bytes_to_tokens(stream, 32).unwrap();
        let out = Interpreter::run_tokens(&spec, &tokens).unwrap();
        tokens_to_bytes(&out.tokens, 32)
    }

    #[test]
    fn single_stump_matches() {
        let stream = gen_stream_shaped(1, 800, 1, 1, 2);
        assert_eq!(run_unit(&stream), golden(&stream));
    }

    #[test]
    fn ensemble_matches_golden() {
        let stream = gen_stream_shaped(7, 6000, 4, 4, 8);
        let got = run_unit(&stream);
        let expect = golden(&stream);
        assert!(!expect.is_empty());
        assert_eq!(got, expect);
    }

    #[test]
    fn default_shape_matches() {
        let stream = gen_stream(99, 20_000);
        assert_eq!(run_unit(&stream), golden(&stream));
    }

    #[test]
    fn walk_takes_two_vcycles_per_level() {
        // depth-6 trees, 8 of them: expect ~ (2*(6+1)) * 8 walk virtual
        // cycles per datapoint on top of the n_features collect cycles.
        let stream = gen_stream_shaped(3, 30_000, 8, 6, 16);
        let spec = tree_unit();
        let tokens = bytes_to_tokens(&stream, 32).unwrap();
        let out = Interpreter::run_tokens(&spec, &tokens).unwrap();
        let header = 3 + 8 + 2 * golden_nodes(&stream);
        let n_dp = (tokens.len() - header) / 16;
        let walk = out.vcycles as i64 - tokens.len() as i64 - 1;
        let per_dp = walk as f64 / n_dp as f64;
        assert!(
            (100.0..=125.0).contains(&per_dp),
            "walk cycles per datapoint {per_dp:.1} outside the 2-per-level model"
        );
    }

    fn golden_nodes(stream: &[u8]) -> usize {
        u32::from_le_bytes(stream[0..4].try_into().unwrap()) as usize
    }
}
