//! # fleet-apps — the six paper applications
//!
//! Each module provides, for one application of §7.1:
//!
//! * the Fleet processing unit (`*_unit()`), written with the
//!   `fleet-lang` builder;
//! * a native *golden* reference implementing the same token algorithm
//!   (differentially tested against the unit through the software
//!   simulator);
//! * a workload generator matching the paper's experimental setup.
//!
//! The [`App`] registry gives the benchmark harness a uniform view,
//! including the paper's Figure 7 processing-unit counts.

#![warn(missing_docs)]

pub mod bloom;
pub mod intcode;
pub mod json;
pub mod micro;
pub mod regex;
pub mod smith;
pub mod tree;

use fleet_lang::UnitSpec;

/// Identifier of one of the six applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppKind {
    /// JSON field extraction.
    Json,
    /// Integer compression.
    IntCode,
    /// Gradient-boosted decision trees.
    Tree,
    /// Smith-Waterman fuzzy matching.
    Smith,
    /// Regular-expression matching.
    Regex,
    /// Bloom-filter construction.
    Bloom,
}

impl AppKind {
    /// All six, in the paper's Figure 7 order.
    pub fn all() -> [AppKind; 6] {
        [
            AppKind::Json,
            AppKind::IntCode,
            AppKind::Tree,
            AppKind::Smith,
            AppKind::Regex,
            AppKind::Bloom,
        ]
    }
}

/// Uniform handle over one application for harnesses and benches.
#[derive(Debug, Clone, Copy)]
pub struct App {
    /// Which application.
    pub kind: AppKind,
}

impl App {
    /// Creates a handle.
    pub fn new(kind: AppKind) -> App {
        App { kind }
    }

    /// Display name as printed in Figure 7.
    pub fn name(&self) -> &'static str {
        match self.kind {
            AppKind::Json => "JSON Parsing",
            AppKind::IntCode => "Integer Coding",
            AppKind::Tree => "Decision Tree",
            AppKind::Smith => "Smith-Waterman",
            AppKind::Regex => "Regex",
            AppKind::Bloom => "Bloom Filter",
        }
    }

    /// The paper's Figure 7 processing-unit count on the F1.
    pub fn paper_pu_count(&self) -> usize {
        match self.kind {
            AppKind::Json => 512,
            AppKind::IntCode => 192,
            AppKind::Tree => 384,
            AppKind::Smith => 384,
            AppKind::Regex => 704,
            AppKind::Bloom => 320,
        }
    }

    /// Builds the processing unit.
    pub fn spec(&self) -> UnitSpec {
        match self.kind {
            AppKind::Json => json::json_unit(),
            AppKind::IntCode => intcode::intcode_unit(),
            AppKind::Tree => tree::tree_unit(),
            AppKind::Smith => smith::smith_unit(),
            AppKind::Regex => regex::regex_unit(regex::EMAIL_PATTERN),
            AppKind::Bloom => bloom::bloom_unit(),
        }
    }

    /// Generates one input stream of roughly `approx_bytes`.
    ///
    /// For integer coding the paper averages over five input ranges;
    /// `gen_stream` varies the range with the seed accordingly.
    pub fn gen_stream(&self, seed: u64, approx_bytes: usize) -> Vec<u8> {
        match self.kind {
            AppKind::Json => json::gen_stream(seed, approx_bytes),
            AppKind::IntCode => {
                let bits = [5u32, 10, 15, 20, 25][(seed % 5) as usize];
                intcode::gen_stream(seed, approx_bytes, bits)
            }
            AppKind::Tree => tree::gen_stream(seed, approx_bytes),
            AppKind::Smith => smith::gen_stream(seed, approx_bytes),
            AppKind::Regex => regex::gen_stream(seed, approx_bytes),
            AppKind::Bloom => bloom::gen_stream(seed, approx_bytes),
        }
    }

    /// Reference output for a stream.
    pub fn golden(&self, input: &[u8]) -> Vec<u8> {
        match self.kind {
            AppKind::Json => json::golden(input),
            AppKind::IntCode => intcode::golden(input),
            AppKind::Tree => tree::golden(input),
            AppKind::Smith => smith::golden(input),
            AppKind::Regex => regex::golden(regex::EMAIL_PATTERN, input),
            AppKind::Bloom => bloom::golden(input),
        }
    }

    /// Output-region capacity to allocate for a given input size
    /// (with generous slack; overflow is detected, not silent).
    pub fn out_capacity(&self, input_len: usize) -> usize {
        let frac = match self.kind {
            AppKind::Json => input_len / 2,
            AppKind::IntCode => input_len + input_len / 2,
            AppKind::Tree => input_len / 4,
            AppKind::Smith => input_len / 2,
            AppKind::Regex => input_len / 2,
            AppKind::Bloom => input_len / 4,
        };
        frac.max(1024)
    }

    /// Input token size in bytes.
    pub fn in_token_bytes(&self) -> usize {
        match self.kind {
            AppKind::Json | AppKind::Smith | AppKind::Regex => 1,
            AppKind::IntCode | AppKind::Tree | AppKind::Bloom => 4,
        }
    }

    /// Lines of Fleet code in the paper's surface syntax (Figure 8's
    /// metric for the Fleet side).
    pub fn lines_of_code(&self) -> usize {
        fleet_lang::display::loc(&self.spec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleet_isim::{bytes_to_tokens, tokens_to_bytes, Interpreter};

    #[test]
    fn registry_covers_all_apps_and_matches_golden() {
        for kind in AppKind::all() {
            let app = App::new(kind);
            let spec = app.spec();
            let stream = app.gen_stream(1, 3000);
            let tokens =
                bytes_to_tokens(&stream, spec.input_token_bits).expect("token-aligned stream");
            let out = Interpreter::run_tokens(&spec, &tokens)
                .unwrap_or_else(|e| panic!("{}: {e}", app.name()));
            let bytes = tokens_to_bytes(&out.tokens, spec.output_token_bits);
            assert_eq!(bytes, app.golden(&stream), "{} output mismatch", app.name());
        }
    }

    #[test]
    fn paper_pu_counts_match_figure7() {
        let counts: Vec<usize> = AppKind::all()
            .iter()
            .map(|&k| App::new(k).paper_pu_count())
            .collect();
        assert_eq!(counts, vec![512, 192, 384, 384, 704, 320]);
    }

    #[test]
    fn loc_is_in_a_plausible_band() {
        for kind in AppKind::all() {
            let app = App::new(kind);
            let loc = app.lines_of_code();
            assert!(
                (10..=400).contains(&loc),
                "{}: {loc} rendered lines",
                app.name()
            );
        }
    }
}
