//! JSON field extraction (§7.1) — the paper's flagship application.
//!
//! The unit reads a list of fields to extract (e.g. `a.b`, `a.c`) from
//! the start of its input stream as a trie transition table, loads it
//! into a BRAM, and then scans a stream of newline-separated (possibly
//! nested) JSON records, emitting the raw bytes of every matched field's
//! value followed by `\n`. A second BRAM holds a per-depth stack of trie
//! states so nested paths resume matching after `}` — most of the logic
//! is the state machine handling JSON control characters, exactly as the
//! paper describes.
//!
//! Supported input (documented subset, mirrored by the generator):
//! compact JSON objects with string/number values and nested objects
//! (no arrays), `\` escapes inside strings, records separated by
//! newlines.

use fleet_lang::{lit, UnitBuilder, UnitSpec};
use rand::{Rng, SeedableRng};

/// Maximum trie states (table is loaded from the stream header;
/// next-state pointers are 7 bits).
pub const MAX_STATES: usize = 128;
/// Maximum nesting depth tracked by the state stack.
pub const MAX_DEPTH: usize = 32;
/// Trie root state. State 0 is the dead state.
pub const ROOT: u8 = 1;

/// Number of outgoing edges per trie entry.
pub const EDGES: usize = 4;

/// One trie transition-table entry: up to four outgoing edges plus a
/// leaf flag (a full target path ends here).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrieEntry {
    /// `(label, target)` pairs; label 0 means the edge is unused.
    pub edges: [(u8, u8); EDGES],
    /// Whether a full dotted path ends at this state.
    pub leaf: bool,
}

impl TrieEntry {
    /// Packs into the 61-bit table word: edge *i* occupies bits
    /// `[15i+14 : 15i]` as `(next << 8) | char` (7-bit next-state
    /// pointers), and bit 60 is the leaf flag.
    pub fn pack(self) -> u64 {
        let mut w = 0u64;
        for (i, (ch, next)) in self.edges.iter().enumerate() {
            debug_assert!((*next as usize) < MAX_STATES);
            w |= (((*next as u64) << 8) | *ch as u64) << (15 * i);
        }
        w | ((self.leaf as u64) << 60)
    }

    /// Inverse of [`TrieEntry::pack`].
    pub fn unpack(w: u64) -> TrieEntry {
        let mut edges = [(0u8, 0u8); EDGES];
        for (i, e) in edges.iter_mut().enumerate() {
            let f = (w >> (15 * i)) & 0x7FFF;
            *e = (f as u8, (f >> 8) as u8);
        }
        TrieEntry { edges, leaf: w & (1 << 60) != 0 }
    }

    /// One trie step on character `c` (dead state on no edge).
    pub fn step(self, c: u8) -> u8 {
        for (ch, next) in self.edges {
            if c != 0 && c == ch {
                return next;
            }
        }
        0
    }
}

/// The field trie built from dotted paths.
#[derive(Debug, Clone)]
pub struct FieldTrie {
    /// Transition table, indexed by state.
    pub table: Vec<TrieEntry>,
}

impl FieldTrie {
    /// Builds a trie from dotted paths like `"a.b"`.
    ///
    /// # Errors
    ///
    /// Returns an error if any state would need more than four outgoing
    /// edges (the hardware entry holds four) or the table overflows.
    pub fn build(paths: &[&str]) -> Result<FieldTrie, String> {
        let mut table = vec![TrieEntry::default(); 2]; // 0 dead, 1 root
        for path in paths {
            let mut state = ROOT as usize;
            for (si, seg) in path.split('.').enumerate() {
                if si > 0 {
                    // Path separator consumes no character: segment ends
                    // are delimited by the JSON structure itself; the
                    // next segment continues from the same state.
                }
                for &c in seg.as_bytes() {
                    let e = table[state];
                    let next = e.step(c);
                    if next != 0 {
                        state = next as usize;
                        continue;
                    }
                    let new_state = table.len();
                    if new_state >= MAX_STATES {
                        return Err("trie table overflow".to_string());
                    }
                    table.push(TrieEntry::default());
                    let e = &mut table[state];
                    match e.edges.iter_mut().find(|(ch, _)| *ch == 0) {
                        Some(slot) => *slot = (c, new_state as u8),
                        None => {
                            return Err(format!(
                                "state {state} needs a fifth edge for {c:#x}; \
                                 the hardware entry holds {EDGES}"
                            ))
                        }
                    }
                    state = new_state;
                }
            }
            table[state].leaf = true;
        }
        Ok(FieldTrie { table })
    }

    /// Serializes the stream header: `[n_states]` then 8 bytes per state.
    pub fn header_bytes(&self) -> Vec<u8> {
        let mut out = vec![self.table.len() as u8];
        for e in &self.table {
            out.extend_from_slice(&e.pack().to_le_bytes());
        }
        out
    }
}

/// Builds the JSON field-extraction processing unit (8-bit in/out).
pub fn json_unit() -> UnitSpec {
    let mut u = UnitBuilder::new("JsonFields", 8, 8);
    let c = u.input();
    let nf = u.stream_finished().not_b();

    // Header loading.
    let mode = u.reg("mode", 2, 0); // 0 count, 1 table, 2 json
    let n_states = u.reg("nStates", 8, 0);
    let load_state = u.reg("loadState", 8, 0);
    let byte_idx = u.reg("byteIdx", 3, 0);
    let entry_acc = u.reg("entryAcc", 56, 0);
    let trie = u.bram("trie", MAX_STATES, 61);
    let stack = u.bram("stateStack", MAX_DEPTH, 8);

    // JSON machine state.
    let depth = u.reg("depth", 5, 0);
    let in_str = u.reg("inString", 1, 0);
    let esc = u.reg("escape", 1, 0);
    let is_key = u.reg("isKey", 1, 0);
    let key_state = u.reg("keyState", 8, 0);
    let key_leaf = u.reg("keyLeaf", 1, 0);
    let pending_leaf = u.reg("pendingLeaf", 1, 0);
    let pending_push = u.reg("pendingPush", 8, 0); // state to push on '{', 0 = dead
    let expect_key = u.reg("expectKey", 1, 0);
    let capturing = u.reg("capturing", 1, 0);
    let cap_str = u.reg("capString", 1, 0);

    u.if_(nf, |u| {
        u.if_(mode.eq_e(0u64), |u| {
            u.set(n_states, c.clone());
            u.set(load_state, lit(0, 8));
            u.set(byte_idx, lit(0, 3));
            u.set(mode, c.eq_e(0u64).mux(lit(2, 2), lit(1, 2)));
        })
        .elif(mode.eq_e(1u64), |u| {
            // Accumulate 8 little-endian bytes; write the 61-bit entry on
            // the last one (the final byte carries the leaf flag).
            u.if_(byte_idx.eq_e(7u64), |u| {
                u.write(trie, load_state.e(), c.slice(4, 0).concat(entry_acc.e()));
                u.set(entry_acc, lit(0, 56));
                let done = (load_state.e() + 1u64).eq_e(n_states.e());
                u.set(load_state, load_state + 1u64);
                u.if_(done, |u| u.set(mode, lit(2, 2)));
            })
            .else_(|u| {
                // entry_acc |= c << (8*byte_idx)
                let widened = lit(0, 48).concat(c.clone());
                u.set(entry_acc, entry_acc.e() | (widened << byte_idx.concat(lit(0, 3))));
            });
            u.set(
                byte_idx,
                byte_idx.eq_e(7u64).mux(lit(0, 3), byte_idx + 1u64),
            );
        })
        .else_(|u| {
            // ---- JSON scanning. ----
            let entry = trie.read(key_state.e());
            let e_leaf = entry.bit(60);
            // 4-way edge match: priority mux over the entry's edges.
            let mut stepped = lit(0, 8);
            for i in (0..EDGES as u16).rev() {
                let ch = entry.slice(15 * i + 7, 15 * i);
                let next = entry.slice(15 * i + 14, 15 * i + 8);
                stepped = c.eq_e(ch).mux(lit(0, 1).concat(next), stepped);
            }

            let is_quote = c.eq_e(b'"' as u64);
            let is_bslash = c.eq_e(b'\\' as u64);
            let is_open = c.eq_e(b'{' as u64);
            let is_close = c.eq_e(b'}' as u64);
            let is_colon = c.eq_e(b':' as u64);
            let is_comma = c.eq_e(b',' as u64);
            let is_nl = c.eq_e(b'\n' as u64);

            u.if_(capturing.e(), |u| {
                u.if_(cap_str.e(), |u| {
                    // String value: emit until the closing quote.
                    u.if_(esc.e(), |u| {
                        u.set(esc, lit(0, 1));
                        u.emit(c.clone());
                    })
                    .elif(is_bslash.clone(), |u| {
                        u.set(esc, lit(1, 1));
                        u.emit(c.clone());
                    })
                    .elif(is_quote.clone(), |u| {
                        u.set(capturing, lit(0, 1));
                        u.emit(lit(b'\n' as u64, 8));
                    })
                    .else_(|u| u.emit(c.clone()));
                })
                .else_(|u| {
                    // Number/bare value: ends at ',' or '}' (which keep
                    // their structural meaning) or newline.
                    u.if_(is_comma.clone().or_b(is_close.clone()).or_b(is_nl.clone()), |u| {
                        u.set(capturing, lit(0, 1));
                        u.emit(lit(b'\n' as u64, 8));
                        u.if_(is_comma.clone(), |u| u.set(expect_key, lit(1, 1)));
                        u.if_(is_close.clone(), |u| {
                            u.set(depth, depth - 1u64);
                            u.set(expect_key, lit(0, 1));
                        });
                    })
                    .else_(|u| u.emit(c.clone()));
                });
            })
            .elif(in_str.e(), |u| {
                u.if_(esc.e(), |u| u.set(esc, lit(0, 1)))
                    .elif(is_bslash.clone(), |u| u.set(esc, lit(1, 1)))
                    .elif(is_quote.clone(), |u| {
                        u.set(in_str, lit(0, 1));
                        u.if_(is_key.e(), |u| {
                            u.set(key_leaf, e_leaf.clone());
                        });
                    })
                    .else_(|u| {
                        u.if_(is_key.e(), |u| u.set(key_state, stepped.clone()));
                    });
            })
            .else_(|u| {
                u.if_(is_quote, |u| {
                    u.if_(expect_key.e(), |u| {
                        u.set(in_str, lit(1, 1));
                        u.set(is_key, lit(1, 1));
                        u.set(key_state, stack.read(depth.e()));
                        u.set(key_leaf, lit(0, 1));
                        u.set(expect_key, lit(0, 1));
                    })
                    .elif(pending_leaf.e(), |u| {
                        // Matched field with a string value.
                        u.set(capturing, lit(1, 1));
                        u.set(cap_str, lit(1, 1));
                        u.set(pending_leaf, lit(0, 1));
                        u.set(pending_push, lit(0, 8));
                    })
                    .else_(|u| {
                        u.set(in_str, lit(1, 1));
                        u.set(is_key, lit(0, 1));
                    });
                })
                .elif(is_colon, |u| {
                    u.set(pending_leaf, key_leaf.e());
                    u.set(pending_push, key_state.e());
                    u.set(key_leaf, lit(0, 1));
                })
                .elif(is_open, |u| {
                    // Top-level record start pushes the trie root.
                    let push = depth.eq_e(0u64).mux(lit(ROOT as u64, 8), pending_push.e());
                    u.write(stack, depth.e() + 1u64, push);
                    u.set(depth, depth + 1u64);
                    u.set(expect_key, lit(1, 1));
                    u.set(pending_leaf, lit(0, 1));
                    u.set(pending_push, lit(0, 8));
                })
                .elif(is_close, |u| {
                    u.set(depth, depth - 1u64);
                    u.set(expect_key, lit(0, 1));
                    u.set(pending_leaf, lit(0, 1));
                    u.set(pending_push, lit(0, 8));
                })
                .elif(is_comma, |u| {
                    u.set(expect_key, lit(1, 1));
                })
                .elif(is_nl, |_u| {
                    // Record separator.
                })
                .else_(|u| {
                    // First character of a bare (number) value.
                    u.if_(pending_leaf.e(), |u| {
                        u.set(capturing, lit(1, 1));
                        u.set(cap_str, lit(0, 1));
                        u.set(pending_leaf, lit(0, 1));
                        u.set(pending_push, lit(0, 8));
                        u.emit(c.clone());
                    });
                });
            });
        });
    });

    u.build().expect("json unit is valid")
}

/// Reference implementation mirroring the hardware state machine.
pub fn golden(input: &[u8]) -> Vec<u8> {
    if input.is_empty() {
        return Vec::new();
    }
    let n_states = input[0] as usize;
    let mut table = Vec::with_capacity(n_states);
    let mut pos = 1usize;
    for _ in 0..n_states {
        let w = u64::from_le_bytes(input[pos..pos + 8].try_into().expect("8 bytes"));
        table.push(TrieEntry::unpack(w));
        pos += 8;
    }
    let payload = &input[pos..];

    let mut out = Vec::new();
    let mut stack = [0u8; MAX_DEPTH];
    let (mut depth, mut in_str, mut esc, mut is_key) = (0usize, false, false, false);
    let (mut key_state, mut key_leaf) = (0u8, false);
    let (mut pending_leaf, mut pending_push) = (false, 0u8);
    let mut expect_key = false;
    let (mut capturing, mut cap_str) = (false, false);

    let entry = |table: &[TrieEntry], s: u8| -> TrieEntry {
        table.get(s as usize).copied().unwrap_or_default()
    };

    for &c in payload {
        if capturing {
            if cap_str {
                if esc {
                    esc = false;
                    out.push(c);
                } else if c == b'\\' {
                    esc = true;
                    out.push(c);
                } else if c == b'"' {
                    capturing = false;
                    out.push(b'\n');
                } else {
                    out.push(c);
                }
            } else if c == b',' || c == b'}' || c == b'\n' {
                capturing = false;
                out.push(b'\n');
                if c == b',' {
                    expect_key = true;
                }
                if c == b'}' {
                    depth = depth.wrapping_sub(1) % MAX_DEPTH;
                    expect_key = false;
                }
            } else {
                out.push(c);
            }
        } else if in_str {
            if esc {
                esc = false;
            } else if c == b'\\' {
                esc = true;
            } else if c == b'"' {
                in_str = false;
                if is_key {
                    key_leaf = entry(&table, key_state).leaf;
                }
            } else if is_key {
                key_state = entry(&table, key_state).step(c);
            }
        } else if c == b'"' {
            if expect_key {
                in_str = true;
                is_key = true;
                key_state = stack[depth % MAX_DEPTH];
                key_leaf = false;
                expect_key = false;
            } else if pending_leaf {
                capturing = true;
                cap_str = true;
                pending_leaf = false;
                pending_push = 0;
            } else {
                in_str = true;
                is_key = false;
            }
        } else if c == b':' {
            pending_leaf = key_leaf;
            pending_push = key_state;
            key_leaf = false;
        } else if c == b'{' {
            let push = if depth == 0 { ROOT } else { pending_push };
            stack[(depth + 1) % MAX_DEPTH] = push;
            depth += 1;
            expect_key = true;
            pending_leaf = false;
            pending_push = 0;
        } else if c == b'}' {
            depth = depth.wrapping_sub(1) % MAX_DEPTH;
            expect_key = false;
            pending_leaf = false;
            pending_push = 0;
        } else if c == b',' {
            expect_key = true;
        } else if c == b'\n' {
            // record separator
        } else if pending_leaf {
            capturing = true;
            cap_str = false;
            pending_leaf = false;
            pending_push = 0;
            out.push(c);
        }
    }
    out
}

/// Generates a stream: trie header for `paths` plus `approx_bytes` of
/// compact, newline-separated JSON records over a fixed schema.
pub fn gen_stream(seed: u64, approx_bytes: usize) -> Vec<u8> {
    let paths = ["user.id", "user.name", "event", "ts.ms"];
    gen_stream_with_paths(seed, approx_bytes, &paths)
}

/// Generator with explicit target paths.
///
/// # Panics
///
/// Panics if the paths do not fit the two-edge trie entries.
pub fn gen_stream_with_paths(seed: u64, approx_bytes: usize, paths: &[&str]) -> Vec<u8> {
    let trie = FieldTrie::build(paths).expect("paths fit the trie");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut out = trie.header_bytes();
    let words = ["click", "view", "buy", "scroll\\\"deep", "login"];
    while out.len() < approx_bytes {
        let id: u32 = rng.gen_range(0..1_000_000);
        let name = words[rng.gen_range(0..words.len())];
        let ev = words[rng.gen_range(0..words.len())];
        let ms: u64 = rng.gen_range(0..10_000_000_000);
        let extra: u32 = rng.gen();
        // A fixed nested schema with some non-target fields mixed in.
        let rec = format!(
            "{{\"user\":{{\"id\":{id},\"name\":\"{name}\",\"tag\":\"x{extra}\"}},\
             \"event\":\"{ev}\",\"ts\":{{\"ms\":{ms},\"tz\":\"utc\"}},\"pad\":{extra}}}\n"
        );
        out.extend_from_slice(rec.as_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleet_isim::{bytes_to_tokens, tokens_to_bytes, Interpreter};

    fn run_unit(stream: &[u8]) -> Vec<u8> {
        let spec = json_unit();
        let tokens = bytes_to_tokens(stream, 8).unwrap();
        let out = Interpreter::run_tokens(&spec, &tokens).unwrap();
        tokens_to_bytes(&out.tokens, 8)
    }

    fn with_header(paths: &[&str], json: &str) -> Vec<u8> {
        let mut v = FieldTrie::build(paths).unwrap().header_bytes();
        v.extend_from_slice(json.as_bytes());
        v
    }

    #[test]
    fn trie_build_and_step() {
        let t = FieldTrie::build(&["ab", "ac"]).unwrap();
        let root = t.table[ROOT as usize];
        let s_a = root.step(b'a');
        assert_ne!(s_a, 0);
        assert_ne!(t.table[s_a as usize].step(b'b'), 0);
        assert_ne!(t.table[s_a as usize].step(b'c'), 0);
        assert_eq!(t.table[s_a as usize].step(b'z'), 0);
    }

    #[test]
    fn trie_entry_pack_roundtrip() {
        let e = TrieEntry {
            edges: [(b'a', 2), (b'b', 127), (b'z', 64), (0, 0)],
            leaf: true,
        };
        assert_eq!(TrieEntry::unpack(e.pack()), e);
        let none = TrieEntry::default();
        assert_eq!(TrieEntry::unpack(none.pack()), none);
    }

    #[test]
    fn trie_supports_four_way_branch() {
        assert!(FieldTrie::build(&["ab", "ac", "ad", "ae"]).is_ok());
    }

    #[test]
    fn trie_rejects_five_way_branch() {
        assert!(FieldTrie::build(&["ab", "ac", "ad", "ae", "af"]).is_err());
    }

    #[test]
    fn extracts_simple_fields() {
        let stream = with_header(&["a"], "{\"a\":42,\"b\":7}\n");
        assert_eq!(golden(&stream), b"42\n");
        assert_eq!(run_unit(&stream), b"42\n");
    }

    #[test]
    fn extracts_string_values() {
        let stream = with_header(&["name"], "{\"name\":\"bob\",\"x\":1}\n");
        assert_eq!(golden(&stream), b"bob\n");
        assert_eq!(run_unit(&stream), b"bob\n");
    }

    #[test]
    fn extracts_nested_fields() {
        let stream = with_header(&["a.b"], "{\"a\":{\"b\":5,\"c\":6},\"b\":9}\n");
        assert_eq!(golden(&stream), b"5\n");
        assert_eq!(run_unit(&stream), b"5\n");
    }

    #[test]
    fn non_matching_keys_ignored() {
        let stream = with_header(&["zz"], "{\"a\":1,\"b\":\"x\"}\n");
        assert_eq!(golden(&stream), b"");
        assert_eq!(run_unit(&stream), b"");
    }

    #[test]
    fn escapes_inside_strings() {
        let stream = with_header(&["k"], "{\"k\":\"a\\\"b\",\"j\":\"\\\\\"}\n");
        assert_eq!(run_unit(&stream), golden(&stream));
        assert_eq!(golden(&stream), b"a\\\"b\n");
    }

    #[test]
    fn value_ending_at_close_brace() {
        let stream = with_header(&["x.y"], "{\"x\":{\"y\":123}}\n{\"x\":{\"y\":4}}\n");
        assert_eq!(golden(&stream), b"123\n4\n");
        assert_eq!(run_unit(&stream), golden(&stream));
    }

    #[test]
    fn matches_golden_on_generated_workload() {
        let stream = gen_stream(42, 6000);
        let got = run_unit(&stream);
        let expect = golden(&stream);
        assert_eq!(got, expect);
        assert!(
            expect.len() > 200,
            "workload should extract plenty of values, got {} bytes",
            expect.len()
        );
    }

    #[test]
    fn one_virtual_cycle_per_character() {
        let spec = json_unit();
        let stream = gen_stream(7, 3000);
        let tokens = bytes_to_tokens(&stream, 8).unwrap();
        let out = Interpreter::run_tokens(&spec, &tokens).unwrap();
        assert_eq!(out.vcycles, tokens.len() as u64 + 1);
    }
}
