//! The cluster-wide service report: job accounting, availability,
//! utilization, latency, and every router/autoscaler decision — in the
//! same hand-rolled JSON idiom as [`fleet_host::ServiceReport`]
//! (nothing in the workspace vendors `serde`).

use fleet_trace::{ClusterCounters, LatencyStats, SchedCounters};

/// Per-host roll-up inside a [`ClusterReport`].
#[derive(Debug, Clone)]
pub struct HostSummary {
    /// Host id (stable routing identity).
    pub host: usize,
    /// Provisioned (non-retired) instances at end of service.
    pub instances: usize,
    /// Instances sitting quarantined at end of service.
    pub quarantined: usize,
    /// This host's scheduler counters.
    pub sched: SchedCounters,
}

/// Everything one cluster service run produced.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Hosts in the cluster.
    pub hosts: usize,
    /// Jobs offered by the arrival source.
    pub offered: u64,
    /// Jobs that ran to completion (exactly once each).
    pub completed: u64,
    /// Jobs that terminally failed after exhausting retries.
    pub failed: u64,
    /// Jobs refused at cluster ingest or during failover replay.
    pub rejected: u64,
    /// Virtual time at end of service, in µs.
    pub virtual_us: u64,
    /// Busy-instance virtual µs (utilization numerator).
    pub busy_instance_us: u128,
    /// Provisioned-instance virtual µs (utilization denominator).
    pub provisioned_instance_us: u128,
    /// End-to-end job latency distribution (arrival → completion).
    pub latency: LatencyStats,
    /// Router/autoscaler/failover decisions.
    pub cluster: ClusterCounters,
    /// Scheduler counters merged across all hosts.
    pub sched: SchedCounters,
    /// Per-host roll-ups, in host-id order.
    pub per_host: Vec<HostSummary>,
}

impl ClusterReport {
    /// Fraction of offered jobs that completed, in [0, 1] — the
    /// availability headline (1.0 when nothing was offered).
    pub fn availability(&self) -> f64 {
        if self.offered == 0 {
            return 1.0;
        }
        self.completed as f64 / self.offered as f64
    }

    /// Fraction of provisioned instance-time spent running batches, in
    /// [0, 1].
    pub fn utilization(&self) -> f64 {
        if self.provisioned_instance_us == 0 {
            return 0.0;
        }
        self.busy_instance_us as f64 / self.provisioned_instance_us as f64
    }

    /// One JSON object with job accounting, derived ratios, the latency
    /// distribution, cluster decisions, merged scheduler counters, and
    /// per-host roll-ups. Purely a function of the virtual timeline, so
    /// two identical serves yield byte-identical strings.
    pub fn to_json(&self) -> String {
        let mut json = format!(
            "{{\"hosts\": {}, \"jobs\": {{\"offered\": {}, \"completed\": {}, \
             \"failed\": {}, \"rejected\": {}}}, \"availability\": {:.6}, \
             \"utilization\": {:.4}, \"virtual_us\": {}, \"latency\": {}, \
             \"cluster\": {}, \"sched\": {}, \"per_host\": [",
            self.hosts,
            self.offered,
            self.completed,
            self.failed,
            self.rejected,
            self.availability(),
            self.utilization(),
            self.virtual_us,
            self.latency.to_json(),
            self.cluster.to_json(),
            self.sched.to_json(),
        );
        for (i, h) in self.per_host.iter().enumerate() {
            if i > 0 {
                json.push_str(", ");
            }
            json.push_str(&format!(
                "{{\"host\": {}, \"instances\": {}, \"quarantined\": {}, \"sched\": {}}}",
                h.host,
                h.instances,
                h.quarantined,
                h.sched.to_json()
            ));
        }
        json.push_str("]}");
        json
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_and_json_shape() {
        let report = ClusterReport {
            hosts: 2,
            offered: 1000,
            completed: 999,
            failed: 1,
            rejected: 0,
            virtual_us: 5000,
            busy_instance_us: 740,
            provisioned_instance_us: 1000,
            latency: LatencyStats::new(),
            cluster: ClusterCounters::default(),
            sched: SchedCounters::default(),
            per_host: vec![
                HostSummary {
                    host: 0,
                    instances: 8,
                    quarantined: 0,
                    sched: SchedCounters::default(),
                },
                HostSummary {
                    host: 1,
                    instances: 9,
                    quarantined: 2,
                    sched: SchedCounters::default(),
                },
            ],
        };
        assert!((report.availability() - 0.999).abs() < 1e-9);
        assert!((report.utilization() - 0.74).abs() < 1e-9);
        let json = report.to_json();
        assert!(json.contains("\"availability\": 0.999000"), "{json}");
        assert!(json.contains("\"utilization\": 0.7400"), "{json}");
        assert!(json.contains("\"per_host\": [{\"host\": 0"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn empty_service_is_fully_available() {
        let report = ClusterReport {
            hosts: 1,
            offered: 0,
            completed: 0,
            failed: 0,
            rejected: 0,
            virtual_us: 0,
            busy_instance_us: 0,
            provisioned_instance_us: 0,
            latency: LatencyStats::new(),
            cluster: ClusterCounters::default(),
            sched: SchedCounters::default(),
            per_host: Vec::new(),
        };
        assert_eq!(report.availability(), 1.0);
        assert_eq!(report.utilization(), 0.0);
    }
}
