//! Fleet-of-fleets: a cluster of simulated Fleet hosts behind one
//! router, with spec-affinity placement, predictor-fed load balancing,
//! area-model-costed autoscaling, and cross-host failover — all on a
//! shared virtual clock so every serve is deterministic.
//!
//! The paper's thesis is that one FPGA hosts a fleet of processing
//! units; this crate models the operational layer above it, where a
//! service runs a fleet *of* those fleets. [`Cluster`] owns N host
//! states (each the same bounded WFQ queue + online predictor +
//! instance pool the single-host [`fleet_host::Host`] uses) and serves
//! a [`JobSource`] arrival stream to completion as a discrete-event
//! simulation. See the [`cluster`] module docs for the routing,
//! autoscaling, and failover models, and [`report`] for the emitted
//! JSON.

#![warn(missing_docs)]

mod cluster;
mod report;

pub use cluster::{Backend, Cluster, ClusterConfig, FaultBurst, JobSource, VecSource};
pub use report::{ClusterReport, HostSummary};
