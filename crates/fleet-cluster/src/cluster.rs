//! The fleet-of-fleets: N hosts behind one router, on one virtual
//! clock.
//!
//! A [`Cluster`] owns a set of host states — each a bounded
//! [`SubmitQueue`], an online [`Predictor`], and a pool of instance
//! slots — and drives them as a discrete-event simulation in virtual
//! microseconds. Every decision (routing, dispatch, autoscaling,
//! failover) happens at an event time and iterates hosts and instances
//! in `(virtual time, host id, instance id)` order, so the whole serve
//! is a pure function of the configuration and arrival stream: reports
//! are byte-identical at any engine sim-thread count and across
//! reruns.
//!
//! **Routing.** Arrivals go to the healthy host minimizing predicted
//! pressure — the queue's predicted backlog (each queued job's
//! predicted run time, maintained incrementally) plus the remaining
//! run time of in-flight batches, normalized by healthy instance
//! count — plus a cold-spec penalty when the host has never run the
//! job's spec (spec-affinity placement: warm hosts win by a
//! configurable margin).
//!
//! **Autoscaling.** A periodic evaluator adds an instance to a host
//! whose queue has stayed deep for several consecutive ticks
//! (hysteresis), costed against the vu9p area model: the new board's
//! package power at the spec's area-fitted PU count must fit the
//! cluster power budget. Sustained idleness retires instances back to
//! the floor.
//!
//! **Failover.** Batch failures quarantine instances exactly like the
//! single-host scheduler; when a host loses its last healthy instance
//! the router drains its queue and replays every job on siblings, and
//! a quarantined instance is replaced (modelling a board swap) after a
//! configurable delay.
//!
//! Two execution backends share all of that control logic:
//! [`Backend::Engine`] runs every batch through the cycle-accurate
//! [`fleet_system::Instance`] (fidelity; the determinism tests vary
//! its sim-thread count), while [`Backend::Model`] derives batch run
//! times from the structural predictor seed, a hidden per-spec
//! slowdown, and pure-hash fault decisions — fast enough for
//! million-job benches while exercising the identical
//! router/autoscaler/failover paths.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use fleet_compiler::CompiledUnit;
use fleet_fault::{mix64, FaultPlan};
use fleet_host::{pack_batch, Job, PackedBatch, Predictor, SubmitQueue};
use fleet_system::{design_area, max_units, Instance, SystemConfig};
use fleet_trace::{ClusterCounters, LatencyStats, SchedCounters};

use crate::report::{ClusterReport, HostSummary};

/// How the cluster executes a launched batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Run every batch through the cycle-accurate system simulator.
    /// Exact but expensive — suited to thousands of jobs, not
    /// millions.
    Engine,
    /// Derive run times from the structural predictor seed, a hidden
    /// per-spec slowdown, and per-batch jitter, all pure hashes of
    /// `seed` — the control plane (routing, scaling, failover,
    /// prediction) is identical to engine mode, only the data plane is
    /// modelled.
    Model {
        /// Seed for the hidden slowdown and jitter hashes.
        seed: u64,
    },
}

/// A window during which a contiguous range of hosts runs under an
/// elevated fault plan — the "zone failure" the availability benches
/// inject.
#[derive(Debug, Clone, Copy)]
pub struct FaultBurst {
    /// Burst start on the virtual clock, inclusive, in µs.
    pub start_us: u64,
    /// Burst end on the virtual clock, exclusive, in µs.
    pub end_us: u64,
    /// First affected host id.
    pub host_lo: usize,
    /// Last affected host id, inclusive.
    pub host_hi: usize,
    /// The plan affected hosts derive batch faults from while the
    /// burst is active (replaces the host's base plan).
    pub plan: FaultPlan,
}

impl FaultBurst {
    fn covers(&self, host: usize, now_us: u64) -> bool {
        (self.host_lo..=self.host_hi).contains(&host)
            && (self.start_us..self.end_us).contains(&now_us)
    }
}

/// Cluster topology, scheduling, autoscaling, and failover knobs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Hosts in the cluster.
    pub hosts: usize,
    /// Instances each host starts with.
    pub instances_per_host: usize,
    /// Autoscaler ceiling per host.
    pub max_instances_per_host: usize,
    /// Autoscaler floor per host.
    pub min_instances_per_host: usize,
    /// Per-host submission-queue bound.
    pub queue_capacity: usize,
    /// Most jobs one batch may carry.
    pub max_jobs_per_batch: usize,
    /// Cap on area-fitted PU slots per instance.
    pub pu_slot_cap: usize,
    /// Platform/controller model shared by every instance. Engine mode
    /// also takes `sim_threads` and `watchdog_cycles` from here.
    pub system: SystemConfig,
    /// Execution backend for launched batches.
    pub backend: Backend,
    /// Base fault plan; each host derives an independent child, each
    /// batch a grandchild, so two hosts never fault identical sites.
    pub fault: FaultPlan,
    /// Zone-sized fault windows layered over the base plan.
    pub bursts: Vec<FaultBurst>,
    /// Failed-batch retries per job before it fails terminally.
    pub retry_limit: u32,
    /// Base retry backoff in virtual µs (doubles per attempt, capped
    /// at 8×).
    pub retry_backoff_us: u64,
    /// Consecutive batch failures that quarantine an instance
    /// (0 disables quarantine).
    pub quarantine_after: u32,
    /// Virtual µs after which a quarantined instance is replaced by a
    /// fresh board (0 disables replacement).
    pub replace_after_us: u64,
    /// Autoscaler evaluation period in virtual µs.
    pub scale_eval_period_us: u64,
    /// Queue depth that counts as scale-up pressure.
    pub scale_up_queue: usize,
    /// Consecutive pressured evaluations before adding an instance.
    pub scale_up_streak: u32,
    /// Consecutive idle evaluations before retiring an instance.
    pub scale_down_streak: u32,
    /// Cluster-wide power budget in milliwatts for provisioned boards,
    /// costed from the vu9p area model (0 = unlimited).
    pub power_budget_mw: u64,
    /// Routing penalty in pressure-µs for placing a spec on a host
    /// that has never run it (spec-affinity strength).
    pub affinity_penalty_us: u64,
}

impl ClusterConfig {
    /// A cluster of `hosts` × `instances_per_host` with the defaults
    /// the tests and benches start from: modest queues, first-fit
    /// packing, quarantine after 2 consecutive failures, replacement
    /// after 50 ms, and an unlimited power budget.
    pub fn new(hosts: usize, instances_per_host: usize) -> ClusterConfig {
        ClusterConfig {
            hosts: hosts.max(1),
            instances_per_host: instances_per_host.max(1),
            max_instances_per_host: (2 * instances_per_host).max(1),
            min_instances_per_host: 1,
            queue_capacity: 256,
            max_jobs_per_batch: 16,
            pu_slot_cap: 16,
            system: SystemConfig::f1(1 << 16),
            backend: Backend::Model { seed: 1 },
            fault: FaultPlan::none(),
            bursts: Vec::new(),
            retry_limit: 3,
            retry_backoff_us: 200,
            quarantine_after: 2,
            replace_after_us: 50_000,
            scale_eval_period_us: 1_000,
            scale_up_queue: 8,
            scale_up_streak: 3,
            scale_down_streak: 10,
            power_budget_mw: 0,
            affinity_penalty_us: 500,
        }
    }
}

/// A (virtual time, job) arrival stream in nondecreasing time order,
/// pulled lazily so million-job workloads never materialize in memory.
pub trait JobSource {
    /// The next arrival, or `None` when the stream is exhausted.
    /// Returned times must be nondecreasing.
    fn next_job(&mut self) -> Option<(u64, Job)>;
}

/// A [`JobSource`] over a pre-built vector (sorted on construction).
#[derive(Debug)]
pub struct VecSource {
    jobs: std::vec::IntoIter<(u64, Job)>,
}

impl VecSource {
    /// Wraps `jobs`, sorting by `(arrival time, job id)` so the stream
    /// order is deterministic regardless of construction order.
    pub fn new(mut jobs: Vec<(u64, Job)>) -> VecSource {
        jobs.sort_by_key(|(at, j)| (*at, j.id));
        VecSource { jobs: jobs.into_iter() }
    }
}

impl JobSource for VecSource {
    fn next_job(&mut self) -> Option<(u64, Job)> {
        self.jobs.next()
    }
}

/// How a launched batch will end (decided at launch; surfaced at its
/// completion event).
#[derive(Debug, Clone)]
enum Outcome {
    /// The run finishes cleanly, producing `out_bytes`.
    Done { out_bytes: u64, faults: u64 },
    /// The run wedges/fails; every member job retries or fails.
    Failed { faults: u64 },
}

#[derive(Debug)]
struct RunningBatch {
    batch: PackedBatch,
    run_us: u64,
    outcome: Outcome,
}

#[derive(Debug, Default)]
struct InstanceState {
    busy_until: Option<u64>,
    running: Option<RunningBatch>,
    quarantined_at: Option<u64>,
    consec_failures: u32,
    retired: bool,
    /// Board power this instance was costed at when provisioned, mW.
    mw: u64,
}

impl InstanceState {
    fn healthy(&self) -> bool {
        !self.retired && self.quarantined_at.is_none()
    }

    fn provisioned(&self) -> bool {
        !self.retired
    }
}

struct HostState {
    queue: SubmitQueue,
    predictor: Predictor,
    instances: Vec<InstanceState>,
    /// Engine-mode simulators, index-parallel with `instances`.
    engines: Vec<Instance>,
    compiled: BTreeMap<Arc<str>, CompiledUnit>,
    /// Specs this host has run — the warm set spec-affinity routing
    /// steers toward.
    warm: BTreeSet<Arc<str>>,
    /// Predicted run µs of each queued job, keyed by job id, so the
    /// backlog gauge updates in O(log n) on every queue transition.
    pending_pred: BTreeMap<u64, u64>,
    backlog_us: u64,
    sched: SchedCounters,
    fault: FaultPlan,
    batch_uid: u64,
    up_streak: u32,
    down_streak: u32,
}

impl HostState {
    fn healthy_instances(&self) -> usize {
        self.instances.iter().filter(|i| i.healthy()).count()
    }

    fn provisioned_instances(&self) -> usize {
        self.instances.iter().filter(|i| i.provisioned()).count()
    }

    fn note_queued(&mut self, job_id: u64, pred_us: u64) {
        self.pending_pred.insert(job_id, pred_us);
        self.backlog_us += pred_us;
    }

    fn note_dequeued(&mut self, job_id: u64) {
        if let Some(p) = self.pending_pred.remove(&job_id) {
            self.backlog_us -= p;
        }
    }
}

/// Why a job is being (re)placed — controls which router counters the
/// placement bumps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Place {
    /// Fresh arrival from the source.
    Arrival,
    /// Replay after a failed batch (the avoided host failed it).
    Retry,
    /// Replay of a job drained out of a dead host's queue.
    Drain,
}

/// FNV-flavoured hash of a spec key for the model backend's hidden
/// per-spec slowdown (pure, deterministic, allocation-free).
fn key_hash(key: &str) -> u64 {
    key.bytes().fold(0xcbf2_9ce4_8422_2325, |h, b| mix64(h ^ b as u64))
}

/// The fleet-of-fleets: hosts behind a pressure/affinity router with
/// autoscaling and cross-host failover. See the module docs for the
/// model; construct with [`Cluster::new`] and drive a whole arrival
/// stream with [`Cluster::run`].
pub struct Cluster {
    cfg: ClusterConfig,
    clock_hz: u64,
    hosts: Vec<HostState>,
    /// Area-fitted PU slots per spec, memoized cluster-wide.
    spec_slots: BTreeMap<Arc<str>, usize>,
    /// Board power per spec (package + DRAM) in mW, memoized.
    spec_mw: BTreeMap<Arc<str>, u64>,
    cluster: ClusterCounters,
    latency: LatencyStats,
    offered: u64,
    completed: u64,
    failed: u64,
    rejected: u64,
    /// Pending retries: `(ready_us, seq) -> (host that failed it, job)`.
    retries: BTreeMap<(u64, u64), (usize, Job)>,
    retry_seq: u64,
    busy_us: u128,
    provisioned_us: u128,
    now: u64,
}

impl Cluster {
    /// Builds the cluster: every host starts with
    /// `cfg.instances_per_host` healthy instances, a fresh predictor
    /// seeded from the platform clock, and a fault plan derived from
    /// the base plan by host id.
    pub fn new(cfg: ClusterConfig) -> Cluster {
        let clock_hz = (cfg.system.platform.clock_hz as u64).max(1);
        let hosts = (0..cfg.hosts)
            .map(|h| {
                let instances =
                    (0..cfg.instances_per_host).map(|_| InstanceState::default()).collect();
                let engines = match cfg.backend {
                    Backend::Engine => (0..cfg.instances_per_host)
                        .map(|i| Instance::new(h * 1000 + i, cfg.system))
                        .collect(),
                    Backend::Model { .. } => Vec::new(),
                };
                HostState {
                    queue: SubmitQueue::new(cfg.queue_capacity),
                    predictor: Predictor::new(clock_hz),
                    instances,
                    engines,
                    compiled: BTreeMap::new(),
                    warm: BTreeSet::new(),
                    pending_pred: BTreeMap::new(),
                    backlog_us: 0,
                    sched: SchedCounters::default(),
                    fault: cfg.fault.derive(h as u64),
                    batch_uid: 0,
                    up_streak: 0,
                    down_streak: 0,
                }
            })
            .collect();
        let mut cluster = Cluster {
            clock_hz,
            hosts,
            spec_slots: BTreeMap::new(),
            spec_mw: BTreeMap::new(),
            cluster: ClusterCounters::default(),
            latency: LatencyStats::new(),
            offered: 0,
            completed: 0,
            failed: 0,
            rejected: 0,
            retries: BTreeMap::new(),
            retry_seq: 0,
            busy_us: 0,
            provisioned_us: 0,
            now: 0,
            cfg,
        };
        cluster.cluster.peak_instances = cluster.provisioned_total() as u64;
        cluster
    }

    fn provisioned_total(&self) -> usize {
        self.hosts.iter().map(|h| h.provisioned_instances()).sum()
    }

    fn provisioned_mw(&self) -> u64 {
        self.hosts
            .iter()
            .flat_map(|h| h.instances.iter())
            .filter(|i| i.provisioned())
            .map(|i| i.mw)
            .sum()
    }

    /// Virtual µs the engine watchdog burns before declaring a wedged
    /// run dead — what a model-mode failed batch occupies its instance
    /// for on top of the run itself.
    fn watchdog_us(&self) -> u64 {
        let cycles = self.cfg.system.watchdog_cycles;
        if cycles == 0 {
            return 1_000;
        }
        (cycles * 1_000_000).div_ceil(self.clock_hz).max(1)
    }

    /// Routing score for placing `job` on host `h` — lower is better.
    /// Pressure (predicted backlog + in-flight remaining, per healthy
    /// instance) plus the cold-spec affinity penalty and a small
    /// queue-depth term.
    fn score(&self, h: usize, job: &Job) -> u64 {
        let host = &self.hosts[h];
        let healthy = host.healthy_instances() as u64;
        let inflight: u64 = host
            .instances
            .iter()
            .filter(|i| i.healthy())
            .filter_map(|i| i.busy_until)
            .map(|u| u.saturating_sub(self.now))
            .sum();
        let pressure = (host.backlog_us + inflight) / healthy.max(1);
        let cold = if host.warm.contains(&job.spec_key) {
            0
        } else {
            self.cfg.affinity_penalty_us
        };
        pressure + cold + host.queue.len() as u64 * 10
    }

    /// Places `job` on the best-scoring healthy host with queue room,
    /// in `(score, host id)` order; `avoid` deprioritizes (but does not
    /// forbid) the host a failed run came from. Jobs no host can take
    /// — or that fail validation — are terminally rejected. Returns
    /// the chosen host, if any.
    fn place(&mut self, job: Job, kind: Place, avoid: Option<usize>) -> Option<usize> {
        if job.validate().is_err() {
            self.rejected += 1;
            return None;
        }
        let mut order: Vec<(u64, usize)> = (0..self.hosts.len())
            .filter(|&h| {
                self.hosts[h].healthy_instances() > 0
                    && self.hosts[h].queue.len() < self.cfg.queue_capacity
            })
            .map(|h| {
                let bias = if avoid == Some(h) { 1u64 << 40 } else { 0 };
                (self.score(h, &job).saturating_add(bias), h)
            })
            .collect();
        order.sort_unstable();
        let Some(&(_, h)) = order.first() else {
            self.rejected += 1;
            return None;
        };
        let max_bytes = job.streams.iter().map(|s| s.len() as u64).max().unwrap_or(1);
        let pred_us =
            self.hosts[h].predictor.predict_run_us(&job.spec_key, &job.spec, max_bytes);
        match kind {
            Place::Arrival => {
                self.cluster.routed += 1;
                if self.hosts[h].warm.contains(&job.spec_key) {
                    self.cluster.warm_hits += 1;
                }
            }
            Place::Retry => {
                if avoid != Some(h) {
                    self.cluster.reroutes += 1;
                }
            }
            Place::Drain => {
                self.cluster.reroutes += 1;
            }
        }
        let id = job.id;
        let host = &mut self.hosts[h];
        host.sched.submitted += 1;
        host.queue
            .submit(job, self.now)
            .expect("validated job submitted below the checked capacity");
        host.sched.admitted += 1;
        host.note_queued(id, pred_us);
        Some(h)
    }

    /// The fault plan a batch launched on host `h` right now derives
    /// from: an active burst's plan if one covers the host, else the
    /// host's base plan.
    fn active_plan(&self, h: usize) -> FaultPlan {
        for b in &self.cfg.bursts {
            if b.covers(h, self.now) {
                return b.plan.derive(h as u64);
            }
        }
        self.hosts[h].fault
    }

    /// Dispatches queued work on host `h`: packs a batch per idle
    /// healthy instance (lowest index first) until the queue empties
    /// or instances run out.
    fn dispatch_host(&mut self, h: usize) {
        loop {
            if self.hosts[h].queue.is_empty() {
                return;
            }
            let Some(i) = self.hosts[h]
                .instances
                .iter()
                .position(|inst| inst.healthy() && inst.busy_until.is_none())
            else {
                return;
            };
            // Split borrows: the pack closure memoizes area fits in
            // `spec_slots` while the queue and counters live in the
            // host — all distinct fields of `self`.
            let Cluster { hosts, spec_slots, cfg, .. } = self;
            let host = &mut hosts[h];
            let mut slots_for = |j: &Job| -> usize {
                if let Some(&s) = spec_slots.get(&j.spec_key) {
                    return s;
                }
                let fit = max_units(&j.spec, &cfg.system.platform, &cfg.system.memctl);
                let s = (fit as usize).clamp(1, cfg.pu_slot_cap.max(1));
                spec_slots.insert(j.spec_key.clone(), s);
                s
            };
            let mut pack_rejected = Vec::new();
            let batch = pack_batch(
                &mut host.queue,
                self.now,
                &mut slots_for,
                cfg.max_jobs_per_batch,
                &mut host.sched,
                &mut pack_rejected,
            );
            for r in &pack_rejected {
                host.note_dequeued(r.id);
            }
            self.rejected += pack_rejected.len() as u64;
            let Some(batch) = batch else { return };
            for job in &batch.jobs {
                self.hosts[h].note_dequeued(job.id);
            }
            self.launch(h, i, batch);
        }
    }

    /// Launches `batch` on `(h, i)`: decides the run's duration and
    /// outcome via the configured backend and occupies the instance
    /// until the completion event.
    fn launch(&mut self, h: usize, i: usize, batch: PackedBatch) {
        let uid = self.hosts[h].batch_uid;
        self.hosts[h].batch_uid += 1;
        self.hosts[h].warm.insert(batch.spec_key.clone());
        let plan = self.active_plan(h).derive(uid);
        let (run_us, outcome) = match self.cfg.backend {
            Backend::Model { seed } => self.model_run(h, uid, &batch, plan, seed),
            Backend::Engine => self.engine_run(h, i, &batch, plan),
        };
        let inst = &mut self.hosts[h].instances[i];
        inst.busy_until = Some(self.now + run_us.max(1));
        inst.running = Some(RunningBatch { batch, run_us, outcome });
    }

    /// Model-backend batch timing: structural seed × hidden per-spec
    /// slowdown (1–2×) × per-batch jitter (±6%), with wedge decisions
    /// from the pure-hash fault plan. Entirely independent of the
    /// (learning) predictor, so predictions converge toward this
    /// ground truth rather than echoing it.
    fn model_run(
        &self,
        h: usize,
        uid: u64,
        batch: &PackedBatch,
        plan: FaultPlan,
        seed: u64,
    ) -> (u64, Outcome) {
        let max_bytes =
            batch.jobs.iter().flat_map(|j| j.streams.iter()).map(|s| s.len() as u64).max();
        let max_bytes = max_bytes.unwrap_or(1).max(1);
        let base = Predictor::new(self.clock_hz).seed(&batch.spec).run_us(max_bytes);
        let kh = key_hash(&batch.spec_key);
        let slow_x1024 = 1024 + mix64(seed ^ kh) % 1024;
        let jit_x1024 = 960 + mix64(seed ^ kh ^ ((h as u64) << 40) ^ uid) % 129;
        let run_us = (base * slow_x1024 / 1024 * jit_x1024 / 1024).max(1);
        let wedged = (0..batch.slots_used as u64)
            .filter(|&s| plan.wedge_threshold(s).is_some())
            .count() as u64;
        if wedged > 0 {
            (run_us + self.watchdog_us(), Outcome::Failed { faults: wedged })
        } else {
            let in_bytes = batch.input_bytes();
            (run_us, Outcome::Done { out_bytes: in_bytes, faults: 0 })
        }
    }

    /// Engine-backend batch timing: compile (cached per host), run the
    /// cycle-accurate instance under the derived fault plan, and
    /// convert cycles to virtual µs in integer math.
    fn engine_run(
        &mut self,
        h: usize,
        i: usize,
        batch: &PackedBatch,
        plan: FaultPlan,
    ) -> (u64, Outcome) {
        let clock_hz = self.clock_hz;
        let host = &mut self.hosts[h];
        let compiled = host
            .compiled
            .entry(batch.spec_key.clone())
            .or_insert_with(|| CompiledUnit::from_arc(batch.spec.clone()));
        let streams = batch.stream_refs();
        let result =
            host.engines[i].run_compiled_faulted(compiled, &streams, batch.out_capacity, plan);
        match result {
            Ok(report) => {
                let run_us = (report.cycles * 1_000_000).div_ceil(clock_hz).max(1);
                (run_us, Outcome::Done {
                    out_bytes: report.output_bytes,
                    faults: report.faults_injected,
                })
            }
            Err(failure) => {
                let run_us = (failure.cycles * 1_000_000).div_ceil(clock_hz).max(1);
                (run_us, Outcome::Failed { faults: failure.faults_injected })
            }
        }
    }

    /// Processes the completion event of `(h, i)`: completes or
    /// retries member jobs, feeds the predictor, and runs the
    /// quarantine / drain-to-sibling failover path.
    fn complete(&mut self, h: usize, i: usize) {
        let inst = &mut self.hosts[h].instances[i];
        inst.busy_until = None;
        let Some(run) = inst.running.take() else { return };
        let RunningBatch { batch, run_us, outcome } = run;
        match outcome {
            Outcome::Done { out_bytes, faults } => {
                let host = &mut self.hosts[h];
                host.instances[i].consec_failures = 0;
                host.sched.faults_injected += faults;
                let max_bytes = batch
                    .jobs
                    .iter()
                    .flat_map(|j| j.streams.iter())
                    .map(|s| s.len() as u64)
                    .max()
                    .unwrap_or(1);
                let in_bytes = batch.input_bytes();
                host.predictor.observe(
                    self.now,
                    i,
                    &batch.spec_key,
                    &batch.spec,
                    max_bytes,
                    run_us,
                    in_bytes,
                    out_bytes,
                );
                for job in &batch.jobs {
                    host.sched.completed += 1;
                    if job.deadline_us.is_some_and(|d| d < self.now) {
                        host.sched.deadline_misses += 1;
                    }
                    self.completed += 1;
                    self.latency.record(self.now.saturating_sub(job.arrival_us));
                }
            }
            Outcome::Failed { faults } => {
                let cfg_quarantine = self.cfg.quarantine_after;
                let retry_limit = self.cfg.retry_limit;
                let backoff_base = self.cfg.retry_backoff_us;
                let host = &mut self.hosts[h];
                host.sched.faults_injected += faults;
                host.instances[i].consec_failures += 1;
                let quarantine = cfg_quarantine > 0
                    && host.instances[i].consec_failures >= cfg_quarantine;
                if quarantine {
                    host.instances[i].quarantined_at = Some(self.now);
                    host.sched.quarantines += 1;
                }
                for mut job in batch.jobs {
                    job.attempts += 1;
                    if job.attempts <= retry_limit {
                        self.hosts[h].sched.retries += 1;
                        let shift = (job.attempts - 1).min(3);
                        let ready = self.now + (backoff_base << shift).max(1);
                        let seq = self.retry_seq;
                        self.retry_seq += 1;
                        self.retries.insert((ready, seq), (h, job));
                    } else {
                        self.hosts[h].sched.failed += 1;
                        self.failed += 1;
                    }
                }
                if quarantine && self.hosts[h].healthy_instances() == 0 {
                    self.cluster.host_quarantines += 1;
                    self.drain_host(h);
                }
            }
        }
    }

    /// Drains every queued job off dead host `h` and replays each on a
    /// sibling — jobs come back in id order, so the replay sequence is
    /// deterministic.
    fn drain_host(&mut self, h: usize) {
        let drained = self.hosts[h].queue.drain_all();
        for job in drained {
            self.hosts[h].note_dequeued(job.id);
            self.cluster.drained_jobs += 1;
            self.place(job, Place::Drain, Some(h));
        }
    }

    /// One autoscaler evaluation: board replacements first, then
    /// hysteresis scale-up/down, host by host in id order.
    fn tick(&mut self) {
        for h in 0..self.hosts.len() {
            // Replacements: a quarantined board past the swap delay
            // comes back fresh.
            if self.cfg.replace_after_us > 0 {
                for i in 0..self.hosts[h].instances.len() {
                    let due = {
                        let inst = &self.hosts[h].instances[i];
                        !inst.retired
                            && inst
                                .quarantined_at
                                .is_some_and(|t| t + self.cfg.replace_after_us <= self.now)
                    };
                    if due {
                        let inst = &mut self.hosts[h].instances[i];
                        inst.quarantined_at = None;
                        inst.consec_failures = 0;
                        if matches!(self.cfg.backend, Backend::Engine) {
                            self.hosts[h].engines[i] =
                                Instance::new(h * 1000 + i, self.cfg.system);
                        }
                        self.cluster.replacements += 1;
                    }
                }
            }

            // Hysteresis: streaks of pressured / idle evaluations.
            let (deep, idle) = {
                let host = &self.hosts[h];
                let deep = host.queue.len() >= self.cfg.scale_up_queue.max(1);
                let idle = host.queue.is_empty()
                    && host
                        .instances
                        .iter()
                        .filter(|x| x.healthy())
                        .all(|x| x.busy_until.is_none());
                (deep, idle)
            };
            if deep {
                self.hosts[h].up_streak += 1;
                self.hosts[h].down_streak = 0;
            } else if idle {
                self.hosts[h].down_streak += 1;
                self.hosts[h].up_streak = 0;
            } else {
                self.hosts[h].up_streak = 0;
                self.hosts[h].down_streak = 0;
            }

            if self.hosts[h].up_streak >= self.cfg.scale_up_streak.max(1)
                && self.hosts[h].provisioned_instances() < self.cfg.max_instances_per_host
            {
                self.scale_up(h);
            } else if self.hosts[h].down_streak >= self.cfg.scale_down_streak.max(1)
                && self.hosts[h].provisioned_instances() > self.cfg.min_instances_per_host
            {
                self.scale_down(h);
            }
        }
    }

    /// Adds one instance to host `h` if the new board's area-model
    /// power cost fits the cluster budget. Costed from the spec at the
    /// host's queue head (the work the board is being added for).
    fn scale_up(&mut self, h: usize) {
        let mw = {
            let Cluster { hosts, spec_slots, spec_mw, cfg, .. } = self;
            let Some(head) = hosts[h].queue.peek(None) else { return };
            if let Some(&mw) = spec_mw.get(&head.spec_key) {
                mw
            } else {
                let fit = spec_slots.entry(head.spec_key.clone()).or_insert_with(|| {
                    let n = max_units(&head.spec, &cfg.system.platform, &cfg.system.memctl);
                    (n as usize).clamp(1, cfg.pu_slot_cap.max(1))
                });
                let area =
                    design_area(&head.spec, *fit, &cfg.system.platform, &cfg.system.memctl);
                let watts =
                    cfg.system.platform.package_watts(area) + cfg.system.platform.dram_watts;
                let mw = ((watts * 1000.0).round() as u64).max(1);
                spec_mw.insert(head.spec_key.clone(), mw);
                mw
            }
        };
        if self.cfg.power_budget_mw > 0
            && self.provisioned_mw() + mw > self.cfg.power_budget_mw
        {
            return;
        }
        // Reuse the highest retired slot (keeps `engines` index-
        // parallel) or append a new one.
        let host = &mut self.hosts[h];
        if let Some(i) = host.instances.iter().rposition(|x| x.retired) {
            host.instances[i] = InstanceState { mw, ..InstanceState::default() };
            if matches!(self.cfg.backend, Backend::Engine) {
                host.engines[i] = Instance::new(h * 1000 + i, self.cfg.system);
            }
        } else {
            let i = host.instances.len();
            host.instances.push(InstanceState { mw, ..InstanceState::default() });
            if matches!(self.cfg.backend, Backend::Engine) {
                host.engines.push(Instance::new(h * 1000 + i, self.cfg.system));
            }
        }
        host.up_streak = 0;
        self.cluster.scale_ups += 1;
        self.cluster.peak_instances =
            self.cluster.peak_instances.max(self.provisioned_total() as u64);
    }

    /// Retires the highest-index idle healthy instance of host `h`.
    fn scale_down(&mut self, h: usize) {
        let host = &mut self.hosts[h];
        let Some(i) = host
            .instances
            .iter()
            .rposition(|x| x.healthy() && x.busy_until.is_none())
        else {
            return;
        };
        host.instances[i].retired = true;
        host.down_streak = 0;
        self.cluster.scale_downs += 1;
    }

    /// Whether any work is still in flight or waiting anywhere.
    fn outstanding(&self) -> bool {
        !self.retries.is_empty()
            || self.hosts.iter().any(|host| {
                !host.queue.is_empty()
                    || host.instances.iter().any(|i| i.busy_until.is_some())
            })
    }

    /// Serves the whole arrival stream to completion and builds the
    /// report. Consumes the cluster: a serve is one-shot, like
    /// [`fleet_host::Host::serve_arrivals`].
    pub fn run(mut self, source: &mut dyn JobSource) -> ClusterReport {
        let period = self.cfg.scale_eval_period_us.max(1);
        let mut next_arrival = source.next_job();
        let mut next_tick = period;
        loop {
            // Next event: the earliest of arrival, retry readiness,
            // batch completion, and (while work is outstanding) the
            // autoscaler tick.
            let mut t = u64::MAX;
            if let Some((at, _)) = &next_arrival {
                t = t.min(*at);
            }
            if let Some(((ready, _), _)) = self.retries.iter().next() {
                t = t.min(*ready);
            }
            for host in &self.hosts {
                for inst in &host.instances {
                    if let Some(u) = inst.busy_until {
                        t = t.min(u);
                    }
                }
            }
            if (next_arrival.is_some() || self.outstanding()) && t != u64::MAX {
                t = t.min(next_tick.max(self.now));
            }
            if t == u64::MAX {
                break;
            }

            // Advance the clock, integrating utilization over the gap.
            let dt = t.saturating_sub(self.now) as u128;
            if dt > 0 {
                let mut busy = 0u128;
                let mut prov = 0u128;
                for host in &self.hosts {
                    for inst in &host.instances {
                        if inst.provisioned() {
                            prov += 1;
                            if inst.busy_until.is_some() {
                                busy += 1;
                            }
                        }
                    }
                }
                self.busy_us += busy * dt;
                self.provisioned_us += prov * dt;
            }
            self.now = t;

            // 1. Completions, in (host, instance) order.
            for h in 0..self.hosts.len() {
                for i in 0..self.hosts[h].instances.len() {
                    if self.hosts[h].instances[i].busy_until.is_some_and(|u| u <= self.now) {
                        self.complete(h, i);
                    }
                }
            }

            // 2. Learning becomes visible at its virtual time.
            for host in &mut self.hosts {
                host.predictor.apply_due(self.now);
            }

            // 3. Autoscaler / replacement ticks.
            while next_tick <= self.now {
                self.tick();
                next_tick += period;
            }

            // 4. Retries whose backoff expired, in (ready, seq) order.
            while let Some(entry) = self.retries.first_entry_key_value() {
                if entry.0 > self.now {
                    break;
                }
                let (key, (from, job)) = self.retries.pop_first().expect("peeked entry pops");
                debug_assert!(key.0 <= self.now);
                self.place(job, Place::Retry, Some(from));
            }

            // 5. Arrivals due now, in source order.
            while let Some((at, mut job)) = next_arrival.take() {
                if at > self.now {
                    next_arrival = Some((at, job));
                    break;
                }
                job.arrival_us = at;
                self.offered += 1;
                self.place(job, Place::Arrival, None);
                next_arrival = source.next_job();
            }

            // 6. Dispatch freed/filled capacity, host by host.
            for h in 0..self.hosts.len() {
                self.dispatch_host(h);
            }
        }

        self.build_report()
    }

    fn build_report(self) -> ClusterReport {
        let mut sched = SchedCounters::default();
        let mut per_host = Vec::with_capacity(self.hosts.len());
        for (h, host) in self.hosts.iter().enumerate() {
            sched.merge(&host.sched);
            per_host.push(HostSummary {
                host: h,
                instances: host.provisioned_instances(),
                quarantined: host
                    .instances
                    .iter()
                    .filter(|i| !i.retired && i.quarantined_at.is_some())
                    .count(),
                sched: host.sched,
            });
        }
        ClusterReport {
            hosts: self.cfg.hosts,
            offered: self.offered,
            completed: self.completed,
            failed: self.failed,
            rejected: self.rejected,
            virtual_us: self.now,
            busy_instance_us: self.busy_us,
            provisioned_instance_us: self.provisioned_us,
            latency: self.latency,
            cluster: self.cluster,
            sched,
            per_host,
        }
    }
}

/// `BTreeMap::first_key_value` adapter returning just the key — kept
/// separate so the retry loop reads naturally.
trait FirstEntry<K: Clone, V> {
    fn first_entry_key_value(&self) -> Option<K>;
}

impl<K: Ord + Clone, V> FirstEntry<K, V> for BTreeMap<K, V> {
    fn first_entry_key_value(&self) -> Option<K> {
        self.keys().next().cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleet_lang::{UnitBuilder, UnitSpec};

    fn byte_spec() -> Arc<UnitSpec> {
        let mut u = UnitBuilder::new("Byte", 8, 8);
        let acc = u.reg("acc", 8, 0);
        let inp = u.input();
        u.set(acc, acc ^ inp);
        Arc::new(u.build().unwrap())
    }

    fn wide_spec() -> Arc<UnitSpec> {
        let mut u = UnitBuilder::new("Wide", 32, 32);
        let acc = u.reg("acc", 32, 0);
        let inp = u.input();
        u.set(acc, acc ^ inp);
        Arc::new(u.build().unwrap())
    }

    fn workload(n: u64, spec: &Arc<UnitSpec>, gap_us: u64, bytes: usize) -> Vec<(u64, Job)> {
        (0..n)
            .map(|i| {
                let job =
                    Job::new(i, (i % 3) as u32, spec.clone(), vec![vec![0u8; bytes]]);
                (i * gap_us, job)
            })
            .collect()
    }

    fn model_cfg(hosts: usize, instances: usize) -> ClusterConfig {
        let mut cfg = ClusterConfig::new(hosts, instances);
        cfg.backend = Backend::Model { seed: 42 };
        cfg.pu_slot_cap = 4;
        cfg
    }

    #[test]
    fn fault_free_model_serve_completes_everything() {
        let spec = byte_spec();
        let cfg = model_cfg(2, 2);
        let mut source = VecSource::new(workload(100, &spec, 20, 1024));
        let report = Cluster::new(cfg).run(&mut source);
        assert_eq!(report.offered, 100);
        assert_eq!(report.completed, 100);
        assert_eq!(report.failed, 0);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.availability(), 1.0);
        assert_eq!(report.cluster.routed, 100);
        assert!(report.latency.count() == 100);
        assert!(report.virtual_us > 0);
    }

    #[test]
    fn conservation_holds_under_wedges() {
        let spec = byte_spec();
        let mut cfg = model_cfg(3, 2);
        cfg.fault = FaultPlan::with_seed(7).wedges(60_000, 64);
        cfg.retry_limit = 2;
        let n = 400;
        let mut source = VecSource::new(workload(n, &spec, 10, 2048));
        let report = Cluster::new(cfg).run(&mut source);
        assert_eq!(report.offered, n);
        assert_eq!(
            report.completed + report.failed + report.rejected,
            n,
            "every job must end exactly once: {report:?}",
        );
        assert!(report.sched.faults_injected > 0, "wedge plan must actually fire");
    }

    #[test]
    fn model_serves_are_byte_identical_across_reruns() {
        let spec = byte_spec();
        let build = || {
            let mut cfg = model_cfg(4, 2);
            cfg.fault = FaultPlan::with_seed(9).wedges(30_000, 64);
            cfg.bursts = vec![FaultBurst {
                start_us: 500,
                end_us: 2_000,
                host_lo: 0,
                host_hi: 1,
                plan: FaultPlan::with_seed(77).wedges(400_000, 64),
            }];
            let mut source = VecSource::new(workload(300, &spec, 15, 1024));
            Cluster::new(cfg).run(&mut source).to_json()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn warm_hosts_attract_their_spec() {
        let byte = byte_spec();
        let wide = wide_spec();
        let mut cfg = model_cfg(2, 2);
        cfg.affinity_penalty_us = 10_000;
        // Alternate specs; affinity should segregate them onto the
        // host that first ran each, yielding a high warm-hit rate.
        let mut jobs = Vec::new();
        for i in 0..200u64 {
            let spec = if i % 2 == 0 { &byte } else { &wide };
            jobs.push((i * 30, Job::new(i, 0, spec.clone(), vec![vec![0u8; 1024]])));
        }
        let mut source = VecSource::new(jobs);
        let report = Cluster::new(cfg).run(&mut source);
        assert_eq!(report.completed, 200);
        assert!(
            report.cluster.warm_hits > 150,
            "affinity routing should land most jobs warm: {}",
            report.cluster.warm_hits
        );
    }

    #[test]
    fn sustained_pressure_scales_up_and_idle_scales_down() {
        let spec = byte_spec();
        let mut cfg = model_cfg(1, 1);
        cfg.max_instances_per_host = 4;
        cfg.scale_up_queue = 4;
        cfg.scale_up_streak = 2;
        cfg.scale_down_streak = 3;
        cfg.scale_eval_period_us = 100;
        // A burst of work far beyond one instance, then a long tail of
        // trickle arrivals to give the scaler idle ticks.
        let mut jobs = workload(150, &spec, 2, 4096);
        for i in 0..5u64 {
            jobs.push((
                200_000 + i * 20_000,
                Job::new(1_000 + i, 0, spec.clone(), vec![vec![0u8; 256]]),
            ));
        }
        let mut source = VecSource::new(jobs);
        let report = Cluster::new(cfg).run(&mut source);
        assert_eq!(report.completed, 155);
        assert!(report.cluster.scale_ups > 0, "deep queue must add instances");
        assert!(report.cluster.scale_downs > 0, "idle tail must retire instances");
        assert!(report.cluster.peak_instances > 1);
    }

    #[test]
    fn dead_host_drains_to_siblings_and_recovers_by_replacement() {
        let spec = byte_spec();
        let mut cfg = model_cfg(2, 1);
        cfg.quarantine_after = 1;
        cfg.retry_limit = 4;
        cfg.replace_after_us = 5_000;
        // Host 0 wedges everything during the burst; host 1 is clean.
        cfg.bursts = vec![FaultBurst {
            start_us: 0,
            end_us: 40_000,
            host_lo: 0,
            host_hi: 0,
            plan: FaultPlan::with_seed(5).wedges(1_000_000, 16),
        }];
        let mut jobs = workload(120, &spec, 25, 1024);
        // A tail arrival keeps the virtual clock (and scaler ticks)
        // running past host 0's board-swap delay.
        jobs.push((60_000, Job::new(5_000, 0, spec.clone(), vec![vec![0u8; 512]])));
        let mut source = VecSource::new(jobs);
        let report = Cluster::new(cfg).run(&mut source);
        assert_eq!(report.offered, 121);
        assert_eq!(
            report.completed + report.failed + report.rejected,
            121,
            "conservation through quarantine/drain/replacement"
        );
        assert!(report.sched.quarantines > 0, "host 0 must quarantine");
        assert!(
            report.cluster.reroutes > 0,
            "failed work must replay on the healthy sibling"
        );
        assert!(report.cluster.replacements > 0, "board swap must restore host 0");
        assert!(report.availability() > 0.9, "got {}", report.availability());
    }

    #[test]
    fn engine_backend_runs_real_instances() {
        let spec = byte_spec();
        let mut cfg = ClusterConfig::new(2, 1);
        cfg.backend = Backend::Engine;
        cfg.pu_slot_cap = 4;
        cfg.system.max_cycles = 50_000_000;
        let mut source = VecSource::new(workload(12, &spec, 50, 512));
        let report = Cluster::new(cfg).run(&mut source);
        assert_eq!(report.completed, 12);
        assert_eq!(report.failed + report.rejected, 0);
        assert!(report.sched.batches_packed > 0);
    }

    #[test]
    fn power_budget_caps_scale_up() {
        let spec = byte_spec();
        let mut cfg = model_cfg(1, 1);
        cfg.max_instances_per_host = 8;
        cfg.scale_up_queue = 2;
        cfg.scale_up_streak = 1;
        cfg.scale_eval_period_us = 50;
        // Budget for roughly the one provisioned board (whose mw is 0:
        // seed instances are free) plus one more board — the second
        // scale-up must be refused.
        cfg.power_budget_mw = 25_000;
        let mut source = VecSource::new(workload(300, &spec, 1, 4096));
        let report = Cluster::new(cfg).run(&mut source);
        assert_eq!(report.completed + report.failed + report.rejected, 300);
        assert!(
            report.cluster.scale_ups <= 1,
            "budget must cap provisioning: {} scale-ups",
            report.cluster.scale_ups
        );
    }
}
