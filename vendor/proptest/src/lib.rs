//! Offline stub of the `proptest` crate.
//!
//! Supports the subset used by this workspace: the `proptest!` macro
//! (with an optional `#![proptest_config(...)]` header), `any::<T>()`,
//! integer-range strategies, tuple strategies, `prop_oneof!` unions,
//! `proptest::collection::vec`, and the
//! `prop_assert*` macros. Cases are generated from a seed derived from
//! the test name, so runs are deterministic. No shrinking: a failing
//! case panics with its case index so it can be replayed by reading the
//! assertion message.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Test-runner random source passed to strategies.
pub struct TestRng(pub StdRng);

impl TestRng {
    /// Deterministic RNG for a named test.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.0.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.0.gen::<bool>()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The "any value of `T`" strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
}

/// Equal-weight union of strategies over one value type (what
/// [`prop_oneof!`] builds).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union; each draw picks one arm uniformly.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }

    /// Starts a union from its first arm, which pins the value type
    /// (`prop_oneof!` chains the remaining arms through [`Union::or`]).
    pub fn of<S>(first: S) -> Union<S::Value>
    where
        S: Strategy<Value = T> + 'static,
    {
        Union { arms: vec![Box::new(first)] }
    }

    /// Adds another equally-weighted arm.
    pub fn or<S>(mut self, arm: S) -> Union<T>
    where
        S: Strategy<Value = T> + 'static,
    {
        self.arms.push(Box::new(arm));
        self
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.0.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Picks uniformly among the listed strategies (upstream supports
/// per-arm weights; this stub draws arms equally).
#[macro_export]
macro_rules! prop_oneof {
    ($first:expr $(, $rest:expr)* $(,)?) => {
        $crate::Union::of($first)$(.or($rest))*
    };
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::RangeInclusive<usize>,
    }

    /// Builds a vector strategy; lengths are drawn uniformly from `len`.
    pub fn vec<S: Strategy>(
        element: S,
        len: std::ops::RangeInclusive<usize>,
    ) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.0.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration (only `cases` is honored).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; the workspace's property tests drive
        // cycle-accurate simulators, so keep the offline default modest.
        ProptestConfig { cases: 64 }
    }
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        ProptestConfig, Strategy, Union,
    };
}

/// Asserts inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` that draws `cases` inputs and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal muncher for [`proptest!`]; not part of the public API.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = $cfg:expr;) => {};
    (config = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest stub: {} failed on case {case}/{} (deterministic seed from test name)",
                        stringify!($name),
                        cfg.cases
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn vec_lengths_respect_bounds(v in crate::collection::vec(any::<u8>(), 3..=9)) {
            prop_assert!((3..=9).contains(&v.len()));
        }

        #[test]
        fn ranges_respected(x in 10u32..20, y in 5usize..=7) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((5..=7).contains(&y));
        }

        #[test]
        fn tuples_compose((a, b) in (1u8..=3, 10usize..=12)) {
            prop_assert!((1..=3).contains(&a));
            prop_assert!((10..=12).contains(&b));
        }

        #[test]
        fn oneof_draws_from_every_arm(x in prop_oneof![0usize..=1, 10usize..=11]) {
            prop_assert!(x <= 1 || (10..=11).contains(&x));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::for_test("t");
        let mut b = crate::TestRng::for_test("t");
        let s = crate::collection::vec(any::<u32>(), 4..=8);
        for _ in 0..10 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
