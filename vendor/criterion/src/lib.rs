//! Offline stub of the `criterion` benchmark harness.
//!
//! Implements the subset the workspace's benches use — benchmark groups,
//! throughput annotation, `bench_function` / `bench_with_input`, and the
//! `criterion_group!` / `criterion_main!` macros. Timing is a simple
//! best-of-N wall-clock measurement printed to stdout; there is no
//! statistical analysis, plotting, or baseline comparison.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Id rendered from a parameter value.
    pub fn from_parameter<P: Display>(p: P) -> BenchmarkId {
        BenchmarkId(p.to_string())
    }

    /// Id from a function name and a parameter.
    pub fn new<P: Display>(name: &str, p: P) -> BenchmarkId {
        BenchmarkId(format!("{name}/{p}"))
    }
}

/// Passed to benchmark closures; runs the measured body.
pub struct Bencher {
    samples: u32,
    best: Duration,
    iters_per_sample: u32,
}

impl Bencher {
    /// Measures `f`, keeping the best per-iteration time over the
    /// configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call.
        std::hint::black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(f());
            }
            let per_iter = start.elapsed() / self.iters_per_sample;
            if per_iter < self.best {
                self.best = per_iter;
            }
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, id: &str, mut f: F) {
        let mut b = Bencher {
            samples: self.criterion.sample_size.max(2),
            best: Duration::MAX,
            iters_per_sample: 1,
        };
        f(&mut b);
        let nanos = b.best.as_nanos().max(1) as f64;
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                format!("  {:>10.3} MiB/s", n as f64 / (nanos / 1e9) / (1 << 20) as f64)
            }
            Some(Throughput::Elements(n)) => {
                format!("  {:>10.3} Melem/s", n as f64 / (nanos / 1e9) / 1e6)
            }
            None => String::new(),
        };
        println!("{}/{id}: {:>12.0} ns/iter{rate}", self.name, nanos);
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) {
        self.run_one(id, f);
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.0, |b| f(b, input));
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n as u32;
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, criterion: self }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
        g.finish();
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
