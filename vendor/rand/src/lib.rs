//! Offline stub of the `rand` crate.
//!
//! The build container has no network access and no crates.io cache, so
//! the workspace vendors the tiny slice of the `rand` 0.8 API it uses:
//! `StdRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`. The
//! generator is xoshiro256** — deterministic across platforms, which is
//! all the test-stream generators require (they compare against golden
//! models computed from the same stream, never against fixed bytes).
//!
//! Not cryptographic; not statistically identical to upstream `StdRng`.

/// Core random source: 64 fresh bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (only the `seed_from_u64` entry point).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a uniformly random value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Integer types samplable from a range by [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi]` (inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width range.
                    return rng.next_u64() as $t;
                }
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                ((lo as u128).wrapping_add(draw)) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + Dec> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_inclusive(rng, self.start, self.end.dec())
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Helper: integer decrement, to turn exclusive ends into inclusive ones.
pub trait Dec {
    /// Returns `self - 1`.
    fn dec(self) -> Self;
}
macro_rules! impl_dec {
    ($($t:ty),*) => {$(impl Dec for $t { fn dec(self) -> Self { self - 1 } })*};
}
impl_dec!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniformly random value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
    /// Uniform draw from a range.
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }
    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        (f64::sample(self)) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded through SplitMix64 — the stand-in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(0..97);
            assert!(v < 97);
            let w: u8 = rng.gen_range(65..=68);
            assert!((65..=68).contains(&w));
            let x: usize = rng.gen_range(1..=7);
            assert!((1..=7).contains(&x));
        }
    }

    #[test]
    fn gen_bool_rates_are_sane() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.4)).count();
        assert!((3_000..5_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn full_width_range_does_not_panic() {
        let mut rng = StdRng::seed_from_u64(1);
        let _: u32 = rng.gen_range(0u32..=u32::MAX);
        let _: u64 = rng.gen_range(0u64..=u64::MAX);
    }
}
