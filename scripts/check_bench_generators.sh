#!/usr/bin/env bash
# Every machine-readable bench artifact tracked in git must be
# regenerable from the tree: a tracked BENCH_<name>.json requires an
# in-tree generator binary at crates/fleet-bench/src/bin/<name>.rs.
# Run from anywhere; CI fails if an artifact has lost its generator.
set -euo pipefail
cd "$(dirname "$0")/.."

status=0
count=0
while IFS= read -r artifact; do
  count=$((count + 1))
  name="${artifact#BENCH_}"
  name="${name%.json}"
  gen="crates/fleet-bench/src/bin/${name}.rs"
  if [ ! -f "$gen" ]; then
    echo "error: $artifact is tracked but has no generator at $gen" >&2
    status=1
  fi
done < <(git ls-files 'BENCH_*.json')

if [ "$status" -eq 0 ]; then
  echo "all $count tracked bench artifacts have in-tree generators"
fi
exit "$status"
